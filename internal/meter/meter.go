// Package meter records the consumption of simulated cloud resources.
//
// The paper's cost study (Sections 7-8) bills an application for every API
// request issued against a cloud service, for the bytes it stores, for the
// hours its virtual machines run, and for the bytes it transfers out of the
// cloud. The Ledger type accumulates exactly those quantities; the pricing
// package turns a Usage snapshot into dollars.
//
// Every simulated service (s3, dynamodb, simpledb, sqs) records into the
// ledger it was constructed with. Callers measure a phase (for example "the
// evaluation of query q3 under strategy LUP") by snapshotting the ledger
// before and after and subtracting.
package meter

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Op identifies a metered operation, e.g. {Service: "dynamodb", Name: "get"}.
type Op struct {
	Service string
	Name    string
}

func (o Op) String() string { return o.Service + "." + o.Name }

// Counts aggregates the activity recorded for one operation.
type Counts struct {
	// Calls is the number of API requests issued (a batch call counts as
	// one request).
	Calls int64
	// Units is the number of logical work units consumed, e.g. items
	// written by a batch put, or key-value capacity units. Services for
	// which the distinction is meaningless record Units == Calls.
	Units int64
	// Bytes is the payload volume moved by the operation.
	Bytes int64
}

func (c Counts) add(d Counts) Counts {
	return Counts{c.Calls + d.Calls, c.Units + d.Units, c.Bytes + d.Bytes}
}

func (c Counts) sub(d Counts) Counts {
	return Counts{c.Calls - d.Calls, c.Units - d.Units, c.Bytes - d.Bytes}
}

// Usage is an immutable snapshot of a Ledger.
type Usage struct {
	ops             map[Op]Counts
	instanceSeconds map[string]float64 // by instance type name
	egressBytes     int64
}

// Ledger accumulates resource consumption. It is safe for concurrent use.
// The zero value is not usable; use NewLedger.
type Ledger struct {
	mu sync.Mutex
	u  Usage
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{u: Usage{
		ops:             make(map[Op]Counts),
		instanceSeconds: make(map[string]float64),
	}}
}

// Record adds one metered operation to the ledger.
func (l *Ledger) Record(service, op string, calls, units, bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	k := Op{service, op}
	l.u.ops[k] = l.u.ops[k].add(Counts{calls, units, bytes})
}

// AddInstanceSeconds bills modeled busy time of a virtual machine of the
// given type (e.g. "l", "xl").
func (l *Ledger) AddInstanceSeconds(instanceType string, seconds float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.u.instanceSeconds[instanceType] += seconds
}

// AddEgress records bytes transferred out of the cloud.
func (l *Ledger) AddEgress(bytes int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.u.egressBytes += bytes
}

// Snapshot returns a copy of the current usage.
func (l *Ledger) Snapshot() Usage {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.u.clone()
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.u = Usage{
		ops:             make(map[Op]Counts),
		instanceSeconds: make(map[string]float64),
	}
}

func (u Usage) clone() Usage {
	c := Usage{
		ops:             make(map[Op]Counts, len(u.ops)),
		instanceSeconds: make(map[string]float64, len(u.instanceSeconds)),
		egressBytes:     u.egressBytes,
	}
	for k, v := range u.ops {
		c.ops[k] = v
	}
	for k, v := range u.instanceSeconds {
		c.instanceSeconds[k] = v
	}
	return c
}

// Sub returns the usage delta u - prev. It is the usual way to isolate the
// consumption of one phase.
func (u Usage) Sub(prev Usage) Usage {
	d := Usage{
		ops:             make(map[Op]Counts),
		instanceSeconds: make(map[string]float64),
		egressBytes:     u.egressBytes - prev.egressBytes,
	}
	for k, v := range u.ops {
		if w, ok := prev.ops[k]; ok {
			v = v.sub(w)
		}
		if v != (Counts{}) {
			d.ops[k] = v
		}
	}
	for k, v := range prev.ops {
		if _, ok := u.ops[k]; !ok {
			d.ops[k] = Counts{}.sub(v)
		}
	}
	for k, v := range u.instanceSeconds {
		d.instanceSeconds[k] = v - prev.instanceSeconds[k]
	}
	for k, v := range prev.instanceSeconds {
		if _, ok := u.instanceSeconds[k]; !ok {
			d.instanceSeconds[k] = -v
		}
	}
	return d
}

// Add returns the combined usage u + other.
func (u Usage) Add(other Usage) Usage {
	s := u.clone()
	for k, v := range other.ops {
		s.ops[k] = s.ops[k].add(v)
	}
	for k, v := range other.instanceSeconds {
		s.instanceSeconds[k] += v
	}
	s.egressBytes += other.egressBytes
	return s
}

// Get returns the counts recorded for one operation.
func (u Usage) Get(service, op string) Counts {
	return u.ops[Op{service, op}]
}

// ServiceCalls sums the Calls of every operation of the given service.
func (u Usage) ServiceCalls(service string) int64 {
	var n int64
	for k, v := range u.ops {
		if k.Service == service {
			n += v.Calls
		}
	}
	return n
}

// ServiceUnits sums the Units of every operation of the given service.
func (u Usage) ServiceUnits(service string) int64 {
	var n int64
	for k, v := range u.ops {
		if k.Service == service {
			n += v.Units
		}
	}
	return n
}

// ServiceBytes sums the Bytes of every operation of the given service.
func (u Usage) ServiceBytes(service string) int64 {
	var n int64
	for k, v := range u.ops {
		if k.Service == service {
			n += v.Bytes
		}
	}
	return n
}

// Ops returns the recorded operations in deterministic order.
func (u Usage) Ops() []Op {
	ops := make([]Op, 0, len(u.ops))
	for k := range u.ops {
		ops = append(ops, k)
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Service != ops[j].Service {
			return ops[i].Service < ops[j].Service
		}
		return ops[i].Name < ops[j].Name
	})
	return ops
}

// InstanceSeconds reports the billed busy seconds for an instance type.
func (u Usage) InstanceSeconds(instanceType string) float64 {
	return u.instanceSeconds[instanceType]
}

// InstanceTypes returns the instance types with billed time, sorted.
func (u Usage) InstanceTypes() []string {
	ts := make([]string, 0, len(u.instanceSeconds))
	for k := range u.instanceSeconds {
		ts = append(ts, k)
	}
	sort.Strings(ts)
	return ts
}

// EgressBytes reports bytes transferred out of the cloud.
func (u Usage) EgressBytes() int64 { return u.egressBytes }

// String renders the usage as a human-readable multi-line report.
func (u Usage) String() string {
	var b strings.Builder
	for _, op := range u.Ops() {
		c := u.ops[op]
		fmt.Fprintf(&b, "%-24s calls=%-8d units=%-8d bytes=%d\n", op, c.Calls, c.Units, c.Bytes)
	}
	for _, t := range u.InstanceTypes() {
		fmt.Fprintf(&b, "ec2.%-20s seconds=%.1f\n", t, u.instanceSeconds[t])
	}
	if u.egressBytes != 0 {
		fmt.Fprintf(&b, "%-24s bytes=%d\n", "net.egress", u.egressBytes)
	}
	return b.String()
}
