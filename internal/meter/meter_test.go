package meter

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordAndGet(t *testing.T) {
	l := NewLedger()
	l.Record("dynamodb", "put", 1, 25, 1000)
	l.Record("dynamodb", "put", 2, 50, 2000)
	l.Record("dynamodb", "get", 1, 1, 64)
	u := l.Snapshot()
	if got := u.Get("dynamodb", "put"); got != (Counts{3, 75, 3000}) {
		t.Errorf("put counts = %+v", got)
	}
	if got := u.Get("dynamodb", "get"); got != (Counts{1, 1, 64}) {
		t.Errorf("get counts = %+v", got)
	}
	if got := u.Get("dynamodb", "missing"); got != (Counts{}) {
		t.Errorf("missing op counts = %+v, want zero", got)
	}
}

func TestServiceAggregates(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "put", 2, 2, 100)
	l.Record("s3", "get", 3, 3, 200)
	l.Record("sqs", "send", 5, 5, 50)
	u := l.Snapshot()
	if got := u.ServiceCalls("s3"); got != 5 {
		t.Errorf("ServiceCalls(s3) = %d, want 5", got)
	}
	if got := u.ServiceUnits("s3"); got != 5 {
		t.Errorf("ServiceUnits(s3) = %d, want 5", got)
	}
	if got := u.ServiceBytes("s3"); got != 300 {
		t.Errorf("ServiceBytes(s3) = %d, want 300", got)
	}
	if got := u.ServiceCalls("sqs"); got != 5 {
		t.Errorf("ServiceCalls(sqs) = %d, want 5", got)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	u1 := l.Snapshot()
	l.Record("s3", "get", 1, 1, 10)
	if got := u1.Get("s3", "get").Calls; got != 1 {
		t.Errorf("snapshot mutated: calls = %d, want 1", got)
	}
}

func TestSub(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddInstanceSeconds("l", 5)
	before := l.Snapshot()
	l.Record("s3", "get", 4, 4, 40)
	l.Record("sqs", "send", 1, 1, 1)
	l.AddInstanceSeconds("l", 7)
	l.AddEgress(100)
	delta := l.Snapshot().Sub(before)
	if got := delta.Get("s3", "get"); got != (Counts{4, 4, 40}) {
		t.Errorf("delta s3.get = %+v", got)
	}
	if got := delta.Get("sqs", "send"); got != (Counts{1, 1, 1}) {
		t.Errorf("delta sqs.send = %+v", got)
	}
	if got := delta.InstanceSeconds("l"); got != 7 {
		t.Errorf("delta instance seconds = %v, want 7", got)
	}
	if got := delta.EgressBytes(); got != 100 {
		t.Errorf("delta egress = %d, want 100", got)
	}
}

func TestAdd(t *testing.T) {
	a := NewLedger()
	a.Record("s3", "get", 1, 1, 10)
	b := NewLedger()
	b.Record("s3", "get", 2, 2, 20)
	b.AddEgress(5)
	sum := a.Snapshot().Add(b.Snapshot())
	if got := sum.Get("s3", "get"); got != (Counts{3, 3, 30}) {
		t.Errorf("sum = %+v", got)
	}
	if sum.EgressBytes() != 5 {
		t.Errorf("egress = %d, want 5", sum.EgressBytes())
	}
}

func TestOpsSorted(t *testing.T) {
	l := NewLedger()
	l.Record("sqs", "send", 1, 1, 0)
	l.Record("dynamodb", "put", 1, 1, 0)
	l.Record("dynamodb", "get", 1, 1, 0)
	ops := l.Snapshot().Ops()
	want := []Op{{"dynamodb", "get"}, {"dynamodb", "put"}, {"sqs", "send"}}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("ops[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestReset(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddEgress(3)
	l.Reset()
	u := l.Snapshot()
	if len(u.Ops()) != 0 || u.EgressBytes() != 0 {
		t.Error("Reset did not clear the ledger")
	}
}

func TestStringIncludesEverything(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddInstanceSeconds("xl", 3)
	l.AddEgress(7)
	s := l.Snapshot().String()
	for _, want := range []string{"s3.get", "ec2.xl", "net.egress"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Record("dynamodb", "get", 1, 1, 2)
			}
		}()
	}
	wg.Wait()
	if got := l.Snapshot().Get("dynamodb", "get"); got != (Counts{4000, 4000, 8000}) {
		t.Errorf("counts = %+v", got)
	}
}

func TestCompactSub(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddInstanceSeconds("l", 5)
	before := l.Compact()
	l.Record("s3", "get", 4, 4, 40)
	l.Record("sqs", "send", 1, 1, 1)
	l.AddInstanceSeconds("l", 7)
	l.AddInstanceSeconds("xl", 2)
	l.AddEgress(100)

	ops, inst, egress := l.Compact().Sub(before)
	want := []OpDelta{
		{Op{"s3", "get"}, Counts{4, 4, 40}},
		{Op{"sqs", "send"}, Counts{1, 1, 1}},
	}
	if len(ops) != len(want) {
		t.Fatalf("ops = %+v, want %+v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("ops[%d] = %+v, want %+v", i, ops[i], want[i])
		}
	}
	wantInst := []TypeSeconds{{"l", 7}, {"xl", 2}}
	if len(inst) != len(wantInst) {
		t.Fatalf("inst = %+v, want %+v", inst, wantInst)
	}
	for i := range wantInst {
		if inst[i] != wantInst[i] {
			t.Errorf("inst[%d] = %+v, want %+v", i, inst[i], wantInst[i])
		}
	}
	if egress != 100 {
		t.Errorf("egress = %d, want 100", egress)
	}

	// SubSince diffs the live state and must agree with the two-reading form.
	ops2, inst2, egress2 := l.SubSince(before)
	if len(ops2) != len(ops) || len(inst2) != len(inst) || egress2 != egress {
		t.Fatalf("SubSince = (%+v, %+v, %d), want (%+v, %+v, %d)", ops2, inst2, egress2, ops, inst, egress)
	}
	for i := range ops {
		if ops2[i] != ops[i] {
			t.Errorf("SubSince ops[%d] = %+v, want %+v", i, ops2[i], ops[i])
		}
	}
}

func TestCompactIntoReuses(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddInstanceSeconds("l", 1)
	scratch := l.Compact()
	l.Record("s3", "put", 2, 2, 20)
	c := l.CompactInto(scratch)
	ops, _, _ := l.Compact().Sub(Compact{})
	got, _, _ := c.Sub(Compact{})
	if len(got) != len(ops) {
		t.Fatalf("CompactInto reading has %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Errorf("ops[%d] = %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestNewUsageRoundTrip(t *testing.T) {
	u := NewUsage(
		map[Op]Counts{{"dynamodb", "get"}: {3, 3, 300}},
		map[string]float64{"xl": 4.5},
		77,
	)
	if got := u.Get("dynamodb", "get"); got != (Counts{3, 3, 300}) {
		t.Errorf("Get = %+v", got)
	}
	if got := u.InstanceSeconds("xl"); got != 4.5 {
		t.Errorf("InstanceSeconds = %v, want 4.5", got)
	}
	if got := u.EgressBytes(); got != 77 {
		t.Errorf("EgressBytes = %d, want 77", got)
	}
}

// Readers (Snapshot, Compact, SubSince) racing writers must neither trip
// the race detector nor observe torn counts: every reading of dynamodb.get
// keeps Calls == Units and Bytes == 2*Calls.
func TestConcurrentReadersAndWriters(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 400; j++ {
				l.Record("dynamodb", "get", 1, 1, 2)
				l.Record("s3", "put", 1, 1, 1)
				l.AddInstanceSeconds("l", 0.001)
				l.AddEgress(1)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			base := l.Compact()
			for j := 0; j < 200; j++ {
				if c := l.Snapshot().Get("dynamodb", "get"); c.Calls != c.Units || c.Bytes != 2*c.Calls {
					t.Errorf("torn snapshot: %+v", c)
					return
				}
				ops, _, _ := l.SubSince(base)
				for _, d := range ops {
					if d.Op == (Op{"dynamodb", "get"}) && (d.Counts.Calls != d.Counts.Units || d.Counts.Bytes != 2*d.Counts.Calls) {
						t.Errorf("torn delta: %+v", d)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := l.Snapshot().Get("dynamodb", "get"); got != (Counts{1600, 1600, 3200}) {
		t.Errorf("final counts = %+v", got)
	}
}

// String renders ops sorted by service then name, independent of the order
// they were recorded in — two ledgers with the same totals must print
// byte-identical reports.
func TestStringStableOrder(t *testing.T) {
	a, b := NewLedger(), NewLedger()
	recs := [][3]string{{"sqs", "send"}, {"dynamodb", "put"}, {"s3", "get"}, {"dynamodb", "get"}}
	for _, r := range recs {
		a.Record(r[0], r[1], 1, 1, 1)
	}
	for i := len(recs) - 1; i >= 0; i-- {
		b.Record(recs[i][0], recs[i][1], 1, 1, 1)
	}
	a.AddInstanceSeconds("xl", 1)
	a.AddInstanceSeconds("l", 2)
	b.AddInstanceSeconds("l", 2)
	b.AddInstanceSeconds("xl", 1)
	sa, sb := a.Snapshot().String(), b.Snapshot().String()
	if sa != sb {
		t.Errorf("String depends on recording order:\n%s\nvs\n%s", sa, sb)
	}
	idx := strings.Index
	if !(idx(sa, "dynamodb.get") < idx(sa, "dynamodb.put") && idx(sa, "dynamodb.put") < idx(sa, "s3.get") && idx(sa, "s3.get") < idx(sa, "sqs.send")) {
		t.Errorf("ops not sorted by service then name:\n%s", sa)
	}
}

// Property: Sub is the inverse of Add on op counts.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(calls1, calls2 uint16, bytes1, bytes2 uint32) bool {
		a := NewLedger()
		a.Record("x", "op", int64(calls1), int64(calls1), int64(bytes1))
		b := NewLedger()
		b.Record("x", "op", int64(calls2), int64(calls2), int64(bytes2))
		ua, ub := a.Snapshot(), b.Snapshot()
		back := ua.Add(ub).Sub(ub)
		return back.Get("x", "op") == ua.Get("x", "op")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
