package meter

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestRecordAndGet(t *testing.T) {
	l := NewLedger()
	l.Record("dynamodb", "put", 1, 25, 1000)
	l.Record("dynamodb", "put", 2, 50, 2000)
	l.Record("dynamodb", "get", 1, 1, 64)
	u := l.Snapshot()
	if got := u.Get("dynamodb", "put"); got != (Counts{3, 75, 3000}) {
		t.Errorf("put counts = %+v", got)
	}
	if got := u.Get("dynamodb", "get"); got != (Counts{1, 1, 64}) {
		t.Errorf("get counts = %+v", got)
	}
	if got := u.Get("dynamodb", "missing"); got != (Counts{}) {
		t.Errorf("missing op counts = %+v, want zero", got)
	}
}

func TestServiceAggregates(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "put", 2, 2, 100)
	l.Record("s3", "get", 3, 3, 200)
	l.Record("sqs", "send", 5, 5, 50)
	u := l.Snapshot()
	if got := u.ServiceCalls("s3"); got != 5 {
		t.Errorf("ServiceCalls(s3) = %d, want 5", got)
	}
	if got := u.ServiceUnits("s3"); got != 5 {
		t.Errorf("ServiceUnits(s3) = %d, want 5", got)
	}
	if got := u.ServiceBytes("s3"); got != 300 {
		t.Errorf("ServiceBytes(s3) = %d, want 300", got)
	}
	if got := u.ServiceCalls("sqs"); got != 5 {
		t.Errorf("ServiceCalls(sqs) = %d, want 5", got)
	}
}

func TestSnapshotIsImmutable(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	u1 := l.Snapshot()
	l.Record("s3", "get", 1, 1, 10)
	if got := u1.Get("s3", "get").Calls; got != 1 {
		t.Errorf("snapshot mutated: calls = %d, want 1", got)
	}
}

func TestSub(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddInstanceSeconds("l", 5)
	before := l.Snapshot()
	l.Record("s3", "get", 4, 4, 40)
	l.Record("sqs", "send", 1, 1, 1)
	l.AddInstanceSeconds("l", 7)
	l.AddEgress(100)
	delta := l.Snapshot().Sub(before)
	if got := delta.Get("s3", "get"); got != (Counts{4, 4, 40}) {
		t.Errorf("delta s3.get = %+v", got)
	}
	if got := delta.Get("sqs", "send"); got != (Counts{1, 1, 1}) {
		t.Errorf("delta sqs.send = %+v", got)
	}
	if got := delta.InstanceSeconds("l"); got != 7 {
		t.Errorf("delta instance seconds = %v, want 7", got)
	}
	if got := delta.EgressBytes(); got != 100 {
		t.Errorf("delta egress = %d, want 100", got)
	}
}

func TestAdd(t *testing.T) {
	a := NewLedger()
	a.Record("s3", "get", 1, 1, 10)
	b := NewLedger()
	b.Record("s3", "get", 2, 2, 20)
	b.AddEgress(5)
	sum := a.Snapshot().Add(b.Snapshot())
	if got := sum.Get("s3", "get"); got != (Counts{3, 3, 30}) {
		t.Errorf("sum = %+v", got)
	}
	if sum.EgressBytes() != 5 {
		t.Errorf("egress = %d, want 5", sum.EgressBytes())
	}
}

func TestOpsSorted(t *testing.T) {
	l := NewLedger()
	l.Record("sqs", "send", 1, 1, 0)
	l.Record("dynamodb", "put", 1, 1, 0)
	l.Record("dynamodb", "get", 1, 1, 0)
	ops := l.Snapshot().Ops()
	want := []Op{{"dynamodb", "get"}, {"dynamodb", "put"}, {"sqs", "send"}}
	if len(ops) != len(want) {
		t.Fatalf("got %d ops, want %d", len(ops), len(want))
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("ops[%d] = %v, want %v", i, ops[i], want[i])
		}
	}
}

func TestReset(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddEgress(3)
	l.Reset()
	u := l.Snapshot()
	if len(u.Ops()) != 0 || u.EgressBytes() != 0 {
		t.Error("Reset did not clear the ledger")
	}
}

func TestStringIncludesEverything(t *testing.T) {
	l := NewLedger()
	l.Record("s3", "get", 1, 1, 10)
	l.AddInstanceSeconds("xl", 3)
	l.AddEgress(7)
	s := l.Snapshot().String()
	for _, want := range []string{"s3.get", "ec2.xl", "net.egress"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Record("dynamodb", "get", 1, 1, 2)
			}
		}()
	}
	wg.Wait()
	if got := l.Snapshot().Get("dynamodb", "get"); got != (Counts{4000, 4000, 8000}) {
		t.Errorf("counts = %+v", got)
	}
}

// Property: Sub is the inverse of Add on op counts.
func TestAddSubRoundTrip(t *testing.T) {
	f := func(calls1, calls2 uint16, bytes1, bytes2 uint32) bool {
		a := NewLedger()
		a.Record("x", "op", int64(calls1), int64(calls1), int64(bytes1))
		b := NewLedger()
		b.Record("x", "op", int64(calls2), int64(calls2), int64(bytes2))
		ua, ub := a.Snapshot(), b.Snapshot()
		back := ua.Add(ub).Sub(ub)
		return back.Get("x", "op") == ua.Get("x", "op")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
