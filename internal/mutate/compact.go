package mutate

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cloud/kv"
)

// CompactStats reports one compaction: the billed store work done to fold
// the write buffer into the main store. Time is the modeled store time of
// that work; the caller charges it to the warehouse clock and to the
// index.compact span.
type CompactStats struct {
	Horizon  uint64 // fold horizon the pass ran at
	Folds    int    // (table, key, owner) triples folded
	Puts     int    // items written
	Deletes  int    // items deleted
	Requests int    // billed store requests issued
	Bytes    int64  // payload bytes written
	Time     time.Duration
}

// Compact folds every buffered entry at or below the fold horizon into the
// main store and retires it from the buffer. Folded items are the same
// content-derived items a direct write would produce, re-writes are diffed
// against what the compactor previously folded (unchanged items are not
// re-put), and puts are group-committed in batches packed to the store's
// batch-put limit — the bulk loader's amortization applied to maintenance
// traffic.
//
// Buffer entries are retired only after every store write and delete has
// landed, so a reader that captured its overlays mid-pass saw either the
// live entry (which wins wholesale over whatever the store returned) or
// the completed fold. A crashed pass re-runs from the same buffer state
// over idempotent content-derived keys and converges; one pass runs at a
// time.
func (c *Corpus) Compact() (CompactStats, error) {
	c.compactMu.Lock()
	defer c.compactMu.Unlock()

	c.mu.Lock()
	horizon := c.horizonLocked()
	c.mu.Unlock()

	stats := CompactStats{Horizon: horizon}
	units := c.delta.Pending(horizon)
	if len(units) == 0 {
		return stats, nil
	}
	stats.Folds = len(units)

	type delKey struct{ hashKey, rangeKey string }
	puts := map[string][]kv.Item{}
	dels := map[string][]delKey{}
	for _, u := range units {
		var live []kv.Item
		if !u.Entry.Tombstone {
			live = u.Entry.Items
		}
		next := map[string]bool{}
		for _, it := range live {
			next[it.RangeKey] = true
		}
		prev := map[string]kv.Item{}
		for _, it := range u.Base {
			prev[it.RangeKey] = it
			if !next[it.RangeKey] {
				dels[u.Table] = append(dels[u.Table], delKey{u.HashKey, it.RangeKey})
			}
		}
		for _, it := range live {
			if old, ok := prev[it.RangeKey]; ok && itemEqual(old, it) {
				continue
			}
			puts[u.Table] = append(puts[u.Table], it)
		}
	}

	tables := make([]string, 0, len(puts)+len(dels))
	seen := map[string]bool{}
	for t := range puts {
		tables = append(tables, t)
		seen[t] = true
	}
	for t := range dels {
		if !seen[t] {
			tables = append(tables, t)
		}
	}
	sort.Strings(tables)

	maxBatch := c.lim.BatchPutItems
	if maxBatch <= 0 {
		maxBatch = 1
	}
	for _, table := range tables {
		for _, dk := range dels[table] {
			d, err := c.store.DeleteItem(table, dk.hashKey, dk.rangeKey)
			stats.Time += d
			if err != nil {
				return stats, fmt.Errorf("compact: delete %s/%s: %w", table, dk.hashKey, err)
			}
			stats.Requests++
			stats.Deletes++
		}
		items := puts[table]
		for len(items) > 0 {
			n := maxBatch
			if n > len(items) {
				n = len(items)
			}
			batch := items[:n]
			items = items[n:]
			d, err := c.store.BatchPut(table, batch)
			stats.Time += d
			if err != nil {
				return stats, fmt.Errorf("compact: batch put %s: %w", table, err)
			}
			stats.Requests++
			stats.Puts += len(batch)
			for _, it := range batch {
				stats.Bytes += it.Size()
			}
		}
	}

	// Every write landed: retire the folded entries so post-pass captures
	// see the folded stamp, then trim document history the horizon passed.
	c.delta.Commit(units)
	c.mu.Lock()
	c.trimDocsLocked(horizon)
	c.mutations = 0
	c.mu.Unlock()

	c.met.folds.Add(int64(stats.Folds))
	c.met.items.Add(int64(stats.Puts))
	c.met.deletes.Add(int64(stats.Deletes))
	c.met.requests.Add(int64(stats.Requests))
	c.met.bytes.Add(stats.Bytes)
	return stats, nil
}

// trimDocsLocked drops retained document versions no pinnable view can
// reach: everything strictly older than the newest entry at or below
// horizon. Requires c.mu.
func (c *Corpus) trimDocsLocked(horizon uint64) {
	for uri, hist := range c.docs {
		keepFrom := 0
		for i := range hist {
			if hist[i].ver <= horizon {
				keepFrom = i
			}
		}
		if keepFrom > 0 {
			c.docs[uri] = append([]docVersion(nil), hist[keepFrom:]...)
		}
	}
}
