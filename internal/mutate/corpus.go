// Package mutate turns the paper's write-once warehouse into a live,
// mutable corpus: atomic document re-index, versioned snapshot reads, and
// LSM-style delta buffering with background compaction.
//
// Every mutation — insert, update, remove — lands in an in-memory
// versioned write buffer (kv.Delta) instead of the billed store, under one
// monotonically bumped corpus version per mutation. Queries pin the
// current version at admission and read a consistent snapshot: each
// look-up captures its keys' buffer overlays before fetching, replacement
// contributions supersede main-store items, and removals are subtracted
// from shared cached postings at decode time via per-version tombstones
// (idblock.MergeTombstones).
//
// A compactor folds buffered entries at or below the fold horizon — the
// minimum pinned version — into the main store in group-committed batches
// packed to the store's batch-put floor, exactly the amortization the bulk
// loader exploits. Items are the byte-identical content-derived items
// every other write path generates, so a fully folded store is
// indistinguishable from a from-scratch build of the same corpus: that is
// the invariant the chaos differential and the snapshot property tests
// pin.
package mutate

import (
	"bytes"
	"sync"

	"repro/internal/cloud/kv"
	"repro/internal/index"
	"repro/internal/obs"
)

// Corpus is the mutable-warehouse state machine: the version counter, the
// per-document manifests, the write buffer, pinned read views, and
// retained document snapshots. Safe for concurrent use; one compaction
// runs at a time.
type Corpus struct {
	store kv.Store
	lim   kv.Limits
	delta *kv.Delta
	met   metrics

	mu        sync.Mutex
	version   uint64
	manifests map[string]*manifest
	docs      map[string][]docVersion
	pins      map[uint64]int
	mutations int64 // mutations since the last compaction

	// compactMu serializes compactions; reads proceed concurrently.
	compactMu sync.Mutex
}

// manifest records one document's full current contribution to the index:
// the exact store items, per table and hash key. It is what makes update
// and remove exactly-once — the items to supersede come from here, never
// from a re-extraction of whatever happens to be in the file store.
type manifest struct {
	ver   uint64
	items map[string]map[string][]kv.Item
}

// docVersion retains one version of a document's content so pinned views
// can evaluate queries against superseded or deleted documents. Retained
// bytes live in the warehouse's memory (the same memtable the delta
// models) and are trimmed as the fold horizon passes them.
type docVersion struct {
	ver     uint64
	data    []byte
	present bool
}

type metrics struct {
	folds    *obs.Counter
	items    *obs.Counter
	deletes  *obs.Counter
	requests *obs.Counter
	bytes    *obs.Counter
	applies  *obs.Counter
	removes  *obs.Counter
}

// Options configures a Corpus.
type Options struct {
	// Obs receives the index.compact.* counters; nil uses a private
	// registry.
	Obs *obs.Registry
}

// NewCorpus wraps a store (typically the retry/chaos/sharded stack) as a
// mutable corpus.
func NewCorpus(store kv.Store, opts Options) *Corpus {
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Corpus{
		store: store,
		lim:   store.Limits(),
		delta: kv.NewDelta(),
		met: metrics{
			folds:    reg.Counter("index.compact.folds"),
			items:    reg.Counter("index.compact.items"),
			deletes:  reg.Counter("index.compact.deletes"),
			requests: reg.Counter("index.compact.requests"),
			bytes:    reg.Counter("index.compact.bytes"),
			applies:  reg.Counter("index.mutate.applies"),
			removes:  reg.Counter("index.mutate.removes"),
		},
		manifests: map[string]*manifest{},
		docs:      map[string][]docVersion{},
		pins:      map[uint64]int{},
	}
}

// Version returns the current corpus version.
func (c *Corpus) Version() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.version
}

// ApplyResult reports one Apply.
type ApplyResult struct {
	Version uint64
	Changed bool
	Items   int   // buffered store items now carrying the document
	Bytes   int64 // their payload bytes
}

// Apply makes ex (plus the document content it was extracted from) the
// document's indexed state, as one atomic version bump: readers pinned
// before the bump see the old contribution everywhere, readers pinned
// after see the new one everywhere. Re-applying an identical extraction is
// a no-op — at-least-once delivery of an update converges without a new
// version, which is what makes a crashed-and-rerun UpdateDocument land on
// the byte-identical state of a clean one.
func (c *Corpus) Apply(ex *index.Extraction, docBytes []byte) ApplyResult {
	newItems := index.ExtractionItems(c.lim, ex)
	uri := ex.URI
	res := ApplyResult{}
	for _, byKey := range newItems {
		for _, items := range byKey {
			res.Items += len(items)
			for _, it := range items {
				res.Bytes += it.Size()
			}
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.manifests[uri]
	sameItems := old != nil && manifestEqual(old.items, newItems)
	sameDoc := false
	if hist := c.docs[uri]; len(hist) > 0 {
		last := hist[len(hist)-1]
		sameDoc = last.present && bytes.Equal(last.data, docBytes)
	}
	if sameItems && sameDoc {
		res.Version = c.version
		return res
	}
	ver := c.version + 1
	if old != nil {
		// Tombstone every key the old contribution touched that the new
		// one no longer does, retaining the superseded items.
		for table, byKey := range old.items {
			for key, items := range byKey {
				if _, ok := newItems[table][key]; !ok {
					c.delta.Tombstone(table, key, uri, ver, items)
				}
			}
		}
	}
	for table, byKey := range newItems {
		for key, items := range byKey {
			if old != nil && itemsEqual(old.items[table][key], items) {
				// Identical contribution: whatever state carries it —
				// a live buffer entry or the folded store — is already
				// right, and skipping the re-put keeps caches hot and
				// the compactor idle for unchanged keys.
				continue
			}
			c.delta.Put(table, key, uri, ver, items)
		}
	}
	c.manifests[uri] = &manifest{ver: ver, items: newItems}
	c.docs[uri] = append(c.docs[uri], docVersion{ver: ver, data: docBytes, present: true})
	c.version = ver
	c.mutations++
	c.met.applies.Inc()
	res.Version = ver
	res.Changed = true
	return res
}

// Remove tombstones the document's entire contribution and retires its
// content, as one version bump. Removing an unknown document is a no-op.
func (c *Corpus) Remove(uri string) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.manifests[uri]
	if old == nil {
		return c.version, false
	}
	ver := c.version + 1
	for table, byKey := range old.items {
		for key, items := range byKey {
			c.delta.Tombstone(table, key, uri, ver, items)
		}
	}
	delete(c.manifests, uri)
	c.docs[uri] = append(c.docs[uri], docVersion{ver: ver, present: false})
	c.version = ver
	c.mutations++
	c.met.removes.Inc()
	return ver, true
}

// MutationsSinceCompact returns the number of version bumps since the last
// compaction, the trigger for Config.CompactEveryDocs.
func (c *Corpus) MutationsSinceCompact() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.mutations
}

// BufferedItems returns the store items currently held by the write
// buffer, across all live versions.
func (c *Corpus) BufferedItems() int {
	return c.delta.Items()
}

// BufferedEntries returns the live overlay entry count.
func (c *Corpus) BufferedEntries() int {
	return c.delta.Len()
}

// URIs returns the documents present at the given version, sorted.
func (c *Corpus) URIs(ver uint64) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for uri, hist := range c.docs {
		if dv := latestDoc(hist, ver); dv != nil && dv.present {
			out = append(out, uri)
		}
	}
	sortStrings(out)
	return out
}

// DocState resolves a document at a version: (data, present). A present
// document at its newest version returns nil data — the caller reads the
// file store, keeping the billed fetch path — while superseded versions
// return the retained snapshot bytes.
func (c *Corpus) DocState(uri string, ver uint64) (data []byte, present bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	hist := c.docs[uri]
	dv := latestDoc(hist, ver)
	if dv == nil {
		// Never tracked: defer to the file store (non-mutable history).
		return nil, true
	}
	if !dv.present {
		return nil, false
	}
	if dv.ver == hist[len(hist)-1].ver {
		return nil, true // current: read the file store
	}
	return dv.data, true
}

// latestDoc returns the newest history entry at or below ver, or nil.
func latestDoc(hist []docVersion, ver uint64) *docVersion {
	var out *docVersion
	for i := range hist {
		if hist[i].ver <= ver {
			out = &hist[i]
		}
	}
	return out
}

// Pin pins the current version and returns the read view. Views must be
// released; an unreleased view blocks the fold horizon forever.
func (c *Corpus) Pin() *View {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pins[c.version]++
	return &View{c: c, ver: c.version}
}

// horizonLocked computes the fold horizon: nothing newer than the oldest
// pinned version may fold, so every live view keeps reading a consistent
// snapshot.
func (c *Corpus) horizonLocked() uint64 {
	h := c.version
	for v := range c.pins {
		if v < h {
			h = v
		}
	}
	return h
}

// View is a pinned snapshot. It implements index.ReadView.
type View struct {
	c    *Corpus
	ver  uint64
	once sync.Once
}

// Version returns the pinned corpus version.
func (v *View) Version() uint64 { return v.ver }

// Capture returns the write-buffer overlays of the keys at the pinned
// version (index.ReadView).
func (v *View) Capture(table string, keys []string) map[string]kv.Overlay {
	return v.c.delta.Capture(table, keys, v.ver)
}

// DocState resolves a document at the pinned version; see Corpus.DocState.
func (v *View) DocState(uri string) ([]byte, bool) {
	return v.c.DocState(uri, v.ver)
}

// Release unpins the view, letting the fold horizon advance past it.
// Releasing twice is safe.
func (v *View) Release() {
	v.once.Do(func() {
		v.c.mu.Lock()
		defer v.c.mu.Unlock()
		if n := v.c.pins[v.ver]; n <= 1 {
			delete(v.c.pins, v.ver)
		} else {
			v.c.pins[v.ver] = n - 1
		}
	})
}

// manifestEqual reports whether two manifests hold byte-identical items.
func manifestEqual(a, b map[string]map[string][]kv.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for table, ak := range a {
		bk, ok := b[table]
		if !ok || len(ak) != len(bk) {
			return false
		}
		for key, items := range ak {
			if !itemsEqual(items, bk[key]) {
				return false
			}
		}
	}
	return true
}

// itemsEqual compares item slices byte for byte, order included (item
// generation is deterministic, so order is content).
func itemsEqual(a, b []kv.Item) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !itemEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

func itemEqual(a, b kv.Item) bool {
	if a.HashKey != b.HashKey || a.RangeKey != b.RangeKey || len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Name != b.Attrs[i].Name || len(a.Attrs[i].Values) != len(b.Attrs[i].Values) {
			return false
		}
		for j := range a.Attrs[i].Values {
			if !bytes.Equal(a.Attrs[i].Values[j], b.Attrs[i].Values[j]) {
				return false
			}
		}
	}
	return true
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
