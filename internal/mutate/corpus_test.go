package mutate

import (
	"strings"
	"testing"

	"repro/internal/cloud/dynamodb"
	"repro/internal/cloud/kv"
	"repro/internal/index"
	"repro/internal/meter"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func extractDoc(t *testing.T, opts index.Options, uri string, data []byte) *index.Extraction {
	t.Helper()
	doc, err := xmltree.Parse(uri, data)
	if err != nil {
		t.Fatal(err)
	}
	return index.Extract(index.TwoLUPI, doc, opts)
}

func newTestStore(t *testing.T) kv.Store {
	t.Helper()
	store := dynamodb.New(meter.NewLedger())
	if err := index.CreateTables(store, index.TwoLUPI); err != nil {
		t.Fatal(err)
	}
	return store
}

func dump(t *testing.T, store kv.Store) map[string][]string {
	t.Helper()
	d := kv.AsDumper(store)
	if d == nil {
		t.Fatal("store is not dumpable")
	}
	out := map[string][]string{}
	for _, tbl := range store.Tables() {
		for _, it := range d.DumpTable(tbl) {
			line := it.HashKey + "\x00" + it.RangeKey
			for _, a := range it.Attrs {
				line += "\x00" + a.Name
				for _, v := range a.Values {
					line += "\x00" + string(v)
				}
			}
			out[tbl] = append(out[tbl], line)
		}
	}
	return out
}

func corpusDocs(t *testing.T, n int) []xmark.Doc {
	t.Helper()
	return xmark.Generate(xmark.Config{Seed: 11, Docs: n, TargetDocBytes: 4 << 10})
}

// mutateDoc inserts a child element right after the root opening tag —
// a structure- and content-visible edit that works on every document
// class the generator produces.
func mutateDoc(t *testing.T, data []byte) []byte {
	t.Helper()
	i := strings.IndexByte(string(data), '>')
	if i < 0 {
		t.Fatal("document has no root element")
	}
	mod := string(data[:i+1]) + "<note>edited</note>" + string(data[i+1:])
	return []byte(mod)
}

// A fully compacted mutable corpus — including updates and removals along
// the way — must leave the main store byte-identical to a from-scratch
// direct-write build of the surviving content. Content-derived range keys
// make both paths write the same items; the diff-based fold must delete
// exactly the superseded ones.
func TestCompactedStoreMatchesDirectBuild(t *testing.T) {
	docs := corpusDocs(t, 8)
	store := newTestStore(t)
	opts := index.OptionsFor(store)
	c := NewCorpus(store, Options{})

	// Insert all, compacting midway so later mutations diff against a
	// partially folded store.
	for i, d := range docs {
		res := c.Apply(extractDoc(t, opts, d.URI, d.Data), d.Data)
		if !res.Changed {
			t.Fatalf("doc %d: fresh apply reported unchanged", i)
		}
		if i == 4 {
			if _, err := c.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Update half with modified content, remove two.
	final := map[string][]byte{}
	for _, d := range docs {
		final[d.URI] = d.Data
	}
	for i, d := range docs {
		switch {
		case i%3 == 0:
			mod := mutateDoc(t, d.Data)
			if res := c.Apply(extractDoc(t, opts, d.URI, mod), mod); !res.Changed {
				t.Fatalf("update of %s was a no-op", d.URI)
			}
			final[d.URI] = mod
		case i%3 == 1 && i < 4:
			if _, ok := c.Remove(d.URI); !ok {
				t.Fatalf("remove %s: not present", d.URI)
			}
			delete(final, d.URI)
		}
	}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := c.BufferedEntries(); got != 0 {
		t.Fatalf("after full compaction, %d buffer entries remain", got)
	}

	direct := newTestStore(t)
	for _, d := range docs {
		data, ok := final[d.URI]
		if !ok {
			continue
		}
		ex := extractDoc(t, opts, d.URI, data)
		if _, _, err := index.WriteExtraction(direct, ex); err != nil {
			t.Fatal(err)
		}
	}
	got, want := dump(t, store), dump(t, direct)
	for tbl := range want {
		if len(got[tbl]) != len(want[tbl]) {
			t.Fatalf("table %s: %d items, want %d", tbl, len(got[tbl]), len(want[tbl]))
		}
		for i := range want[tbl] {
			if got[tbl][i] != want[tbl][i] {
				t.Fatalf("table %s item %d differs:\n got %q\nwant %q", tbl, i, got[tbl][i], want[tbl][i])
			}
		}
	}
}

// Re-applying an identical extraction — a redelivered update task — must
// not bump the version or dirty the buffer.
func TestApplyIdempotent(t *testing.T) {
	docs := corpusDocs(t, 2)
	store := newTestStore(t)
	opts := index.OptionsFor(store)
	c := NewCorpus(store, Options{})

	ex := extractDoc(t, opts, docs[0].URI, docs[0].Data)
	r1 := c.Apply(ex, docs[0].Data)
	entries := c.BufferedEntries()
	r2 := c.Apply(extractDoc(t, opts, docs[0].URI, docs[0].Data), docs[0].Data)
	if r2.Changed {
		t.Error("identical re-apply reported a change")
	}
	if r2.Version != r1.Version || c.Version() != r1.Version {
		t.Errorf("re-apply moved version: %d -> %d", r1.Version, r2.Version)
	}
	if got := c.BufferedEntries(); got != entries {
		t.Errorf("re-apply changed buffer: %d -> %d entries", entries, got)
	}
	if _, ok := c.Remove("no-such-doc"); ok {
		t.Error("removing an unknown document reported a change")
	}
}

// Pinned views keep seeing their snapshot while the corpus mutates, and
// the fold horizon must not pass the oldest pin.
func TestSnapshotPinsAndHorizon(t *testing.T) {
	docs := corpusDocs(t, 3)
	store := newTestStore(t)
	opts := index.OptionsFor(store)
	c := NewCorpus(store, Options{})

	for _, d := range docs {
		c.Apply(extractDoc(t, opts, d.URI, d.Data), d.Data)
	}
	v3 := c.Pin()
	defer v3.Release()
	if v3.Version() != 3 {
		t.Fatalf("pinned version %d, want 3", v3.Version())
	}
	if _, removed := c.Remove(docs[0].URI); !removed {
		t.Fatal("remove failed")
	}
	v4 := c.Pin()
	defer v4.Release()

	if got := c.URIs(v3.Version()); len(got) != 3 {
		t.Errorf("version 3 sees %d docs, want 3", len(got))
	}
	if got := c.URIs(v4.Version()); len(got) != 2 {
		t.Errorf("version 4 sees %d docs, want 2", len(got))
	}

	// The pin at version 3 holds the horizon: the removal must not fold.
	st, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Horizon != 3 {
		t.Errorf("horizon %d, want 3", st.Horizon)
	}
	if c.BufferedEntries() == 0 {
		t.Error("removal folded while a view was pinned below it")
	}
	// Overlays at version 4 must still carry the removal's tombstones.
	tomb := false
	for _, tbl := range store.Tables() {
		var keys []string
		for _, it := range kv.AsDumper(store).DumpTable(tbl) {
			keys = append(keys, it.HashKey)
		}
		for _, ov := range v4.Capture(tbl, keys) {
			if len(ov.Tombstones) > 0 {
				tomb = true
			}
		}
	}
	if !tomb {
		t.Error("no tombstone visible at version 4 after remove")
	}

	v3.Release()
	v3.Release() // double release must be safe
	if st, err = c.Compact(); err != nil {
		t.Fatal(err)
	}
	if st.Horizon != 4 || c.BufferedEntries() != 0 {
		t.Errorf("after release: horizon %d (want 4), %d entries (want 0)", st.Horizon, c.BufferedEntries())
	}
	if st.Deletes == 0 {
		t.Error("folding a removal issued no deletes")
	}
}

// Document content resolution: the current version reads the file store,
// superseded versions read retained bytes, removed versions are absent —
// and compaction trims history the horizon passed.
func TestDocStateRetention(t *testing.T) {
	docs := corpusDocs(t, 1)
	store := newTestStore(t)
	opts := index.OptionsFor(store)
	c := NewCorpus(store, Options{})

	orig := docs[0].Data
	c.Apply(extractDoc(t, opts, docs[0].URI, orig), orig)
	v1 := c.Pin()
	defer v1.Release()

	mod := mutateDoc(t, orig)
	if res := c.Apply(extractDoc(t, opts, docs[0].URI, mod), mod); !res.Changed {
		t.Fatal("update was a no-op")
	}

	if data, present := c.DocState(docs[0].URI, v1.Version()); !present || string(data) != string(orig) {
		t.Error("pinned view does not see retained original bytes")
	}
	if data, present := c.DocState(docs[0].URI, c.Version()); !present || data != nil {
		t.Error("current version should read the file store (nil data, present)")
	}
	if _, present := c.DocState("never-seen", 1); !present {
		t.Error("untracked document must defer to the file store as present")
	}

	v1.Release()
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	if data, present := c.DocState(docs[0].URI, 1); !present || data != nil {
		t.Error("after trim, version 1 resolves to the newest surviving entry")
	}

	c.Remove(docs[0].URI)
	if _, present := c.DocState(docs[0].URI, c.Version()); present {
		t.Error("removed document still present at the removal version")
	}
}

// A compaction pass must batch its puts to the store's batch-put limit:
// requests, not items, are what the bill charges.
func TestCompactGroupCommits(t *testing.T) {
	docs := corpusDocs(t, 6)
	store := newTestStore(t)
	opts := index.OptionsFor(store)
	c := NewCorpus(store, Options{})
	for _, d := range docs {
		c.Apply(extractDoc(t, opts, d.URI, d.Data), d.Data)
	}
	st, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts == 0 || st.Requests == 0 {
		t.Fatalf("compaction did nothing: %+v", st)
	}
	lim := store.Limits().BatchPutItems
	// Per table the last batch may run short; with 4 tables the request
	// count must stay close to the packed floor.
	minReq := st.Puts / lim
	maxReq := st.Puts/lim + len(store.Tables()) + st.Deletes
	if st.Requests < minReq || st.Requests > maxReq {
		t.Errorf("%d puts took %d requests; packed bound [%d, %d]", st.Puts, st.Requests, minReq, maxReq)
	}
	if st.Time <= 0 {
		t.Error("compaction reported no modeled store time")
	}
}
