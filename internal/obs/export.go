package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// promName converts a registry metric name to a Prometheus-compatible one:
// an "xwh_" namespace prefix, dots to underscores.
func promName(name string) string {
	return "xwh_" + strings.ReplaceAll(name, ".", "_")
}

// WriteProm renders the registry in the Prometheus text exposition format
// (version 0.0.4). Counters get a `_total` suffix; each histogram emits two
// families, `<name>_wall_seconds` and `<name>_modeled_seconds`, with the
// usual `_bucket{le=...}`, `_sum` and `_count` series.
func WriteProm(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	for _, name := range r.CounterNames() {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, r.Counter(name).Value())
	}
	for _, name := range r.GaugeNames() {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(bw, "%s %d\n", pn, r.Gauge(name).Value())
	}
	for _, name := range r.HistogramNames() {
		h := r.Histogram(name)
		writePromHist(bw, promName(name)+"_wall_seconds", h.Wall())
		writePromHist(bw, promName(name)+"_modeled_seconds", h.Modeled())
	}
	return bw.Flush()
}

func writePromHist(w io.Writer, pn string, s HistSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
	var cum int64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn,
			strconv.FormatFloat(bound.Seconds(), 'g', -1, 64), cum)
	}
	if n := len(s.Counts); n > 0 {
		cum += s.Counts[n-1]
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, cum)
	fmt.Fprintf(w, "%s_sum %s\n", pn, strconv.FormatFloat(s.Sum.Seconds(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", pn, s.Count)
}

// jsonHist is the JSON shape of one histogram side.
type jsonHist struct {
	BoundsNS []int64 `json:"bounds_ns"`
	Counts   []int64 `json:"counts"`
	Count    int64   `json:"count"`
	SumNS    int64   `json:"sum_ns"`
}

func toJSONHist(s HistSnapshot) jsonHist {
	bounds := make([]int64, len(s.Bounds))
	for i, b := range s.Bounds {
		bounds[i] = int64(b)
	}
	return jsonHist{BoundsNS: bounds, Counts: s.Counts, Count: s.Count, SumNS: int64(s.Sum)}
}

// WriteJSON renders the registry as one JSON object with "counters",
// "gauges" and "histograms" sections.
func WriteJSON(w io.Writer, r *Registry) error {
	doc := struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		Histograms map[string]struct {
			Wall    jsonHist `json:"wall"`
			Modeled jsonHist `json:"modeled"`
		} `json:"histograms"`
	}{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Histograms: map[string]struct {
			Wall    jsonHist `json:"wall"`
			Modeled jsonHist `json:"modeled"`
		}{},
	}
	if r != nil {
		for _, name := range r.CounterNames() {
			doc.Counters[name] = r.Counter(name).Value()
		}
		for _, name := range r.GaugeNames() {
			doc.Gauges[name] = r.Gauge(name).Value()
		}
		for _, name := range r.HistogramNames() {
			h := r.Histogram(name)
			doc.Histograms[name] = struct {
				Wall    jsonHist `json:"wall"`
				Modeled jsonHist `json:"modeled"`
			}{toJSONHist(h.Wall()), toJSONHist(h.Modeled())}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteText renders the registry as a human-readable report, the format
// `xwh stats` prints: counters and gauges as aligned name/value lines,
// histograms as count/mean/p50/p99 summaries of both clock sides.
func WriteText(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	if names := r.CounterNames(); len(names) > 0 {
		fmt.Fprintln(bw, "counters:")
		for _, name := range names {
			fmt.Fprintf(bw, "  %-40s %d\n", name, r.Counter(name).Value())
		}
	}
	if names := r.GaugeNames(); len(names) > 0 {
		fmt.Fprintln(bw, "gauges:")
		for _, name := range names {
			fmt.Fprintf(bw, "  %-40s %d\n", name, r.Gauge(name).Value())
		}
	}
	if names := r.HistogramNames(); len(names) > 0 {
		fmt.Fprintln(bw, "histograms (count / mean / p50 / p99):")
		for _, name := range names {
			h := r.Histogram(name)
			for _, side := range []struct {
				label string
				s     HistSnapshot
			}{{"modeled", h.Modeled()}, {"wall", h.Wall()}} {
				if side.s.Count == 0 {
					continue
				}
				fmt.Fprintf(bw, "  %-40s %6d  %10s  %10s  %10s\n",
					name+"."+side.label, side.s.Count,
					side.s.Mean().Round(time.Microsecond),
					side.s.Quantile(0.50).Round(time.Microsecond),
					side.s.Quantile(0.99).Round(time.Microsecond))
			}
		}
	}
	return bw.Flush()
}

// PromSample is one parsed sample line of a Prometheus text exposition.
type PromSample struct {
	Name   string
	Labels string // raw label block, braces stripped; "" when absent
	Value  float64
}

// ParseProm is a minimal validator/parser for the Prometheus text format:
// it accepts comment and blank lines, requires every other line to be
// `name[{labels}] value`, and returns the parsed samples. It exists so the
// obs-smoke target can assert the exporter's output is well-formed without
// a Prometheus dependency.
func ParseProm(rd io.Reader) ([]PromSample, error) {
	var out []PromSample
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Split the metric part from the value at the last space, so label
		// values containing spaces would still parse.
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("obs: prom line %d: no value: %q", lineNo, line)
		}
		metric, valStr := strings.TrimSpace(line[:i]), line[i+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: prom line %d: bad value %q: %v", lineNo, valStr, err)
		}
		name, labels := metric, ""
		if j := strings.IndexByte(metric, '{'); j >= 0 {
			if !strings.HasSuffix(metric, "}") {
				return nil, fmt.Errorf("obs: prom line %d: unclosed label block: %q", lineNo, line)
			}
			name, labels = metric[:j], metric[j+1:len(metric)-1]
		}
		if name == "" {
			return nil, fmt.Errorf("obs: prom line %d: empty metric name: %q", lineNo, line)
		}
		for _, r := range name {
			if !(r == '_' || r == ':' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				return nil, fmt.Errorf("obs: prom line %d: invalid metric name %q", lineNo, name)
			}
		}
		out = append(out, PromSample{Name: name, Labels: labels, Value: v})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Handler serves the registry and tracer over HTTP:
//
//	/metrics       Prometheus text format
//	/metrics.json  JSON registry dump
//	/trace.json    span journal, oldest first
//	/healthz       liveness: always 200 while the process serves
//	/readyz        readiness: 200 when every ready check passes, else 503
//
// tr may be nil, in which case /trace.json serves an empty array. Each
// ready func reports one readiness precondition (warehouse loaded, queue
// accepting); a non-nil error makes /readyz answer 503 with the reason.
// With no ready funcs, /readyz behaves like /healthz.
func Handler(r *Registry, tr *Tracer, ready ...func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, r)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteJSON(w, r)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = tr.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		for _, check := range ready {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %v\n", err)
				return
			}
		}
		fmt.Fprintln(w, "ready")
	})
	return mux
}

// StageOrder sorts span/stage names into the canonical Figure 1 pipeline
// order (write side first, then read side); unknown names sort after known
// ones, alphabetically. Used by the benchall per-stage table and tests.
func StageOrder(names []string) {
	rank := map[string]int{
		SpanSubmitDocument: 0,
		SpanIndexDoc:       1,
		SpanLease:          2,
		SpanExtract:        3,
		SpanUpload:         4,
		SpanCompact:        5,
		SpanAdmit:          6,
		SpanQuery:          7,
		SpanSubmitQuery:    8,
		SpanProcess:        9,
		SpanLookup:         10,
		SpanIndexGet:       11,
		SpanScatter:        12,
		SpanSemijoin:       13,
		SpanTwigJoin:       14,
		SpanEval:           15,
		SpanResults:        16,
		SpanFetchResults:   17,
	}
	sort.SliceStable(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok:
			return true
		case jok:
			return false
		default:
			return names[i] < names[j]
		}
	})
}

// Span names of the Figure 1 pipeline stages. Write side: a document is
// submitted (steps 1-3), then a worker leases its loader message, extracts
// the index entries and uploads them (steps 4-7; "upload" covers both the
// per-document path and a bulk loader flush share). Read side: a query is
// submitted (steps 8-9), processed (10-14: index lookup — itself split
// into raw gets, the LUP⋉LUI semijoin and the twig join — then
// per-document eval and the results write), and its results fetched
// (steps 15-18).
const (
	SpanSubmitDocument = "submit.document"
	SpanIndexDoc       = "index.doc"
	SpanLease          = "lease"
	SpanExtract        = "extract"
	SpanUpload         = "upload"
	// SpanCompact wraps one delta-compaction pass of a mutable corpus: the
	// group-committed fold of the write buffer into the main index store.
	// Its billed puts/deletes are the maintenance cost the mutate experiment
	// attributes separately from first-build uploads.
	SpanCompact = "index.compact"

	// SpanAdmit wraps the serving daemon's admission decision for one HTTP
	// request: quota check, queue wait, and scheduling onto a worker. Its
	// children are the per-query pipeline spans.
	SpanAdmit = "serve.admit"

	SpanQuery       = "query"
	SpanSubmitQuery = "submit.query"
	SpanProcess     = "process"
	SpanLookup      = "lookup"
	SpanIndexGet    = "index.get"
	// SpanScatter annotates an index.get served by a sharded store: the
	// scatter-gather fan-out across partitions, with the shard count and
	// per-shard key distribution attached.
	SpanScatter      = "lookup.scatter"
	SpanSemijoin     = "semijoin"
	SpanTwigJoin     = "twigjoin"
	SpanEval         = "eval"
	SpanResults      = "results"
	SpanFetchResults = "fetch.results"
)
