package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/meter"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a.b").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.Add("a.b", 10) // CounterSink path
	if got := c.Value(); got != 15 {
		t.Fatalf("after sink Add: counter = %d, want 15", got)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", time.Millisecond, 10*time.Millisecond, 100*time.Millisecond)
	h.Observe(500*time.Microsecond, 5*time.Millisecond)
	h.ObserveWall(50 * time.Millisecond)
	h.ObserveModeled(time.Second) // overflow bucket

	wall := h.Wall()
	if wall.Count != 2 || wall.Counts[0] != 1 || wall.Counts[2] != 1 {
		t.Fatalf("wall snapshot = %+v", wall)
	}
	mod := h.Modeled()
	if mod.Count != 2 || mod.Counts[1] != 1 || mod.Counts[3] != 1 {
		t.Fatalf("modeled snapshot = %+v", mod)
	}
	if got := mod.Sum; got != 5*time.Millisecond+time.Second {
		t.Fatalf("modeled sum = %v", got)
	}
	if q := wall.Quantile(0.5); q != time.Millisecond {
		t.Fatalf("wall p50 = %v, want 1ms", q)
	}
	if q := wall.Quantile(0.99); q != 100*time.Millisecond {
		t.Fatalf("wall p99 = %v, want 100ms", q)
	}
	// Overflow observations report the largest finite bound.
	if q := mod.Quantile(0.99); q != 100*time.Millisecond {
		t.Fatalf("modeled p99 = %v, want 100ms", q)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter should stay zero")
	}
	r.Gauge("g").Set(1)
	r.Histogram("h").Observe(time.Second, time.Second)
	if r.Histogram("h").Wall().Count != 0 {
		t.Fatal("nil histogram should stay empty")
	}
	r.Add("x", 1)
	if r.CounterNames() != nil || r.HistogramNames() != nil {
		t.Fatal("nil registry names should be nil")
	}

	var tr *Tracer
	s := tr.Start("root")
	s.SetAttr("k", "v")
	s.SetModeled(time.Second)
	s.SetError(errors.New("boom"))
	c2 := s.Child("child")
	c2.End()
	s.End()
	if tr.Spans() != nil {
		t.Fatal("nil tracer should have no spans")
	}
	if got := tr.ChildOf(nil, "x"); got != nil {
		t.Fatal("nil tracer ChildOf should return nil")
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(time.Millisecond, time.Millisecond)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Wall().Count; got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTracerSpanTreeAndLedgerDiff(t *testing.T) {
	led := meter.NewLedger()
	tr := NewTracer(led, 16)

	root := tr.Start("query")
	root.SetAttr("id", "q-000001")
	child := root.Child("lookup")
	led.Record("dynamodb", "get", 3, 5, 1024)
	child.SetModeled(2 * time.Second)
	child.End()
	led.Record("s3", "get", 1, 1, 4096)
	led.AddEgress(128)
	root.SetModeled(5 * time.Second)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Journal is oldest-first; the child ended first.
	lu, q := spans[0], spans[1]
	if lu.Name != "lookup" || q.Name != "query" {
		t.Fatalf("span order: %q, %q", lu.Name, q.Name)
	}
	if lu.Parent != q.ID {
		t.Fatalf("lookup parent = %d, want %d", lu.Parent, q.ID)
	}
	if lu.Modeled != 2*time.Second {
		t.Fatalf("lookup modeled = %v", lu.Modeled)
	}
	if len(lu.Ops) != 1 || lu.Ops[0] != (OpCounts{"dynamodb", "get", 3, 5, 1024}) {
		t.Fatalf("lookup ops = %+v", lu.Ops)
	}
	// Root diff covers the child's billing plus its own.
	if q.Calls() != 4 {
		t.Fatalf("query calls = %d, want 4", q.Calls())
	}
	if q.Egress != 128 {
		t.Fatalf("query egress = %d", q.Egress)
	}
	if got := q.LedgerDiff().Get("s3", "get").Bytes; got != 4096 {
		t.Fatalf("query ledger diff s3 bytes = %d", got)
	}
	if q.Attr("id") != "q-000001" {
		t.Fatalf("query id attr = %q", q.Attr("id"))
	}

	// End is idempotent.
	root.End()
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("after duplicate End: %d spans", n)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(nil, 3)
	for i := 0; i < 5; i++ {
		s := tr.Start("s")
		s.SetAttrInt("i", int64(i))
		s.End()
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("journal holds %d spans, want 3", len(spans))
	}
	if spans[0].Attr("i") != "2" || spans[2].Attr("i") != "4" {
		t.Fatalf("wrong eviction order: %v ... %v", spans[0].Attrs, spans[2].Attrs)
	}
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", tr.Dropped())
	}
}

func TestQuerySpansSelectsTree(t *testing.T) {
	tr := NewTracer(nil, 32)
	q1 := tr.Start("query")
	q1.SetAttr("id", "q-000001")
	c1 := q1.Child("lookup")
	g1 := c1.Child("index.get")
	g1.End()
	c1.End()
	q1.End()
	q2 := tr.Start("query")
	q2.SetAttr("id", "q-000002")
	q2.End()

	sel := tr.QuerySpans("q-000001")
	if len(sel) != 3 {
		t.Fatalf("selected %d spans, want 3", len(sel))
	}
	for _, r := range sel {
		if r.Attr("id") == "q-000002" {
			t.Fatal("selected the wrong query's span")
		}
	}
	tree := FormatTree(sel)
	if !strings.Contains(tree, "query") || !strings.Contains(tree, "  lookup") ||
		!strings.Contains(tree, "    index.get") {
		t.Fatalf("tree missing expected structure:\n%s", tree)
	}
}

func TestTracerWriteJSON(t *testing.T) {
	led := meter.NewLedger()
	tr := NewTracer(led, 8)
	s := tr.Start("extract")
	led.Record("s3", "get", 1, 1, 100)
	s.SetModeled(time.Second)
	s.End()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &recs); err != nil {
		t.Fatalf("journal JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(recs) != 1 || recs[0]["name"] != "extract" {
		t.Fatalf("unexpected journal: %v", recs)
	}
}

func TestWritePromAndParse(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.query.processed").Add(3)
	r.Gauge("core.workers").Set(2)
	h := r.Histogram("core.query.response", time.Second, 10*time.Second)
	h.Observe(time.Second/2, 2*time.Second)

	var buf bytes.Buffer
	if err := WriteProm(&buf, r); err != nil {
		t.Fatal(err)
	}
	samples, err := ParseProm(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exporter output does not parse: %v\n%s", err, buf.String())
	}
	byName := map[string]float64{}
	for _, s := range samples {
		if s.Labels == "" {
			byName[s.Name] = s.Value
		}
	}
	if byName["xwh_core_query_processed_total"] != 3 {
		t.Fatalf("counter sample missing: %v", byName)
	}
	if byName["xwh_core_workers"] != 2 {
		t.Fatalf("gauge sample missing: %v", byName)
	}
	if byName["xwh_core_query_response_modeled_seconds_count"] != 1 {
		t.Fatalf("histogram count missing: %v", byName)
	}
	if byName["xwh_core_query_response_modeled_seconds_sum"] != 2 {
		t.Fatalf("histogram sum = %v", byName["xwh_core_query_response_modeled_seconds_sum"])
	}
	// Cumulative buckets: wall 0.5s falls under le="1".
	found := false
	for _, s := range samples {
		if s.Name == "xwh_core_query_response_wall_seconds_bucket" && s.Labels == `le="1"` {
			found = true
			if s.Value != 1 {
				t.Fatalf("wall le=1 bucket = %v, want 1", s.Value)
			}
		}
	}
	if !found {
		t.Fatal("missing le=1 bucket sample")
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"no_value_here",
		"name not-a-number",
		"bad{unclosed 1",
		"bad-name! 1",
	} {
		if _, err := ParseProm(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseProm accepted %q", bad)
		}
	}
	samples, err := ParseProm(strings.NewReader("# HELP x y\n\nx 1\n"))
	if err != nil || len(samples) != 1 {
		t.Fatalf("comment handling broken: %v %v", samples, err)
	}
}

func TestWriteJSONRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(1)
	r.Histogram("h", time.Second).ObserveModeled(time.Second)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters   map[string]int64 `json:"counters"`
		Histograms map[string]struct {
			Modeled struct {
				Count int64 `json:"count"`
			} `json:"modeled"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["c"] != 1 || doc.Histograms["h"].Modeled.Count != 1 {
		t.Fatalf("unexpected JSON: %s", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("core.query.processed").Add(2)
	r.Histogram("core.query.response").Observe(time.Millisecond, time.Second)
	var buf bytes.Buffer
	if err := WriteText(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"core.query.processed", "core.query.response.modeled", "core.query.response.wall"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText missing %q:\n%s", want, out)
		}
	}
}

func TestStageOrder(t *testing.T) {
	names := []string{"zzz", SpanEval, SpanExtract, SpanLookup, SpanIndexDoc, "aaa"}
	StageOrder(names)
	want := []string{SpanIndexDoc, SpanExtract, SpanLookup, SpanEval, "aaa", "zzz"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("order = %v, want %v", names, want)
		}
	}
}
