// Package obs is the warehouse's unified observability layer: one metrics
// Registry (counters, gauges, fixed-bucket latency histograms) and one span
// Tracer for the Figure 1 pipeline, with Prometheus-text and JSON export.
//
// The paper's whole argument (Sections 7-8) is an attribution exercise —
// which pipeline stage burns the time, which service call costs the money —
// and this package makes that attribution a first-class runtime artifact
// instead of a pile of ad-hoc stats structs. Three design rules:
//
//   - Deterministic and side-effect-free: instrumentation never issues a
//     service request, never draws from a seeded PRNG, and never perturbs
//     modeled time — with obs enabled, ledger totals, store dumps and query
//     results are byte-identical to a run without it (the differential
//     tests in internal/core assert this).
//   - Two clocks: histograms and spans record both real wall-clock time
//     (what the host machine did) and vtime-modeled time (what the
//     simulated cloud billed). Modeled quantities are seed-stable; wall
//     quantities obviously are not, and nothing downstream depends on them.
//   - Cost-annotated spans: each span carries the meter.Ledger diff (billed
//     calls, units, bytes, instance-seconds, egress) incurred underneath
//     it, so a span tree is simultaneously a latency profile and a bill.
//
// Every metric accessor and every Span method is nil-receiver safe, so
// instrumented code needs no "is obs enabled" branches: a nil Tracer hands
// out nil Spans and the whole span API degrades to no-ops.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is unusable;
// obtain counters from a Registry. All methods are nil-safe.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta (no-op on nil).
func (c *Counter) Add(delta int64) {
	if c != nil {
		c.v.Add(delta)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. All methods are nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value (no-op on nil).
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add shifts the gauge by delta (no-op on nil).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultLatencyBuckets are the fixed histogram bucket upper bounds used
// when a histogram is created without explicit buckets. They span queue
// round trips (sub-millisecond) to full-corpus indexing phases (minutes).
var DefaultLatencyBuckets = []time.Duration{
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
	time.Minute,
	5 * time.Minute,
}

// histSide is one clock's view of a histogram: per-bucket counts (the last
// slot is the +Inf overflow), total count and total sum.
type histSide struct {
	counts []int64
	count  int64
	sum    time.Duration
}

func (h *histSide) observe(bounds []time.Duration, d time.Duration) {
	i := sort.Search(len(bounds), func(i int) bool { return d <= bounds[i] })
	h.counts[i]++
	h.count++
	h.sum += d
}

// HistSnapshot is an immutable view of one clock side of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1 slots,
	// the last being the +Inf overflow bucket.
	Bounds []time.Duration
	Counts []int64
	Count  int64
	Sum    time.Duration
}

// Mean returns Sum/Count, or zero for an empty histogram.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0 < q <= 1):
// the bucket bound under which at least q of the observations fall. The
// overflow bucket reports the largest finite bound.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Histogram is a fixed-bucket latency histogram with two independent clock
// sides: wall (real elapsed time) and modeled (vtime durations from the
// simulated cloud). Safe for concurrent use; all methods are nil-safe.
type Histogram struct {
	bounds []time.Duration

	mu      sync.Mutex
	wall    histSide
	modeled histSide
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBuckets
	}
	b := make([]time.Duration, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{
		bounds:  b,
		wall:    histSide{counts: make([]int64, len(b)+1)},
		modeled: histSide{counts: make([]int64, len(b)+1)},
	}
}

// Observe records one event on both clock sides.
func (h *Histogram) Observe(wall, modeled time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.wall.observe(h.bounds, wall)
	h.modeled.observe(h.bounds, modeled)
	h.mu.Unlock()
}

// ObserveWall records one event on the wall side only.
func (h *Histogram) ObserveWall(wall time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.wall.observe(h.bounds, wall)
	h.mu.Unlock()
}

// ObserveModeled records one event on the modeled side only (used by call
// sites whose real time is not separately measurable, e.g. pro-rata upload
// shares of a coalesced batch).
func (h *Histogram) ObserveModeled(modeled time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.modeled.observe(h.bounds, modeled)
	h.mu.Unlock()
}

func (h *Histogram) snapshotSide(side *histSide) HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(side.counts)),
		Count:  side.count,
		Sum:    side.sum,
	}
	copy(s.Counts, side.counts)
	return s
}

// Wall returns a snapshot of the wall-clock side (zero snapshot on nil).
func (h *Histogram) Wall() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapshotSide(&h.wall)
}

// Modeled returns a snapshot of the vtime-modeled side (zero on nil).
func (h *Histogram) Modeled() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.snapshotSide(&h.modeled)
}

// Registry is the single home of a warehouse's metrics. Metrics are created
// on first use and live for the registry's lifetime; callers on hot paths
// should resolve their instruments once and retain the pointers. Safe for
// concurrent use; all methods are nil-safe.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed (nil on a nil
// registry — the nil Counter is itself a no-op).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds (DefaultLatencyBuckets when none are passed). Bounds of an existing
// histogram are not changed.
func (r *Registry) Histogram(name string, bounds ...time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Add increments the named counter by delta. It satisfies the CounterSink
// interfaces of the kv and chaos packages, which stream their degradation
// counters into the registry without importing it.
func (r *Registry) Add(name string, delta int64) { r.Counter(name).Add(delta) }

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the registered histogram names, sorted.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
