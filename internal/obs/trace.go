package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/meter"
)

// OpCounts is one billed operation inside a span's ledger diff, flattened
// for JSON export.
type OpCounts struct {
	Service string `json:"service"`
	Op      string `json:"op"`
	Calls   int64  `json:"calls"`
	Units   int64  `json:"units"`
	Bytes   int64  `json:"bytes"`
}

func opLess(a, b OpCounts) bool {
	if a.Service != b.Service {
		return a.Service < b.Service
	}
	return a.Op < b.Op
}

// Attr is one span annotation. Values are strings so the JSON dump is
// schema-free; numeric attributes go through SetAttrInt.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// InstSeconds is one instance type's billed busy time inside a span's
// ledger diff.
type InstSeconds struct {
	Type    string  `json:"type"`
	Seconds float64 `json:"seconds"`
}

// SpanRecord is a finished span as kept in the Tracer's journal.
type SpanRecord struct {
	ID       int64         `json:"id"`
	Parent   int64         `json:"parent"` // 0 for roots
	Name     string        `json:"name"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      string        `json:"err,omitempty"`
	Wall     time.Duration `json:"wall_ns"`
	Modeled  time.Duration `json:"modeled_ns"`
	Ops      []OpCounts    `json:"ops,omitempty"`
	Inst     []InstSeconds `json:"inst,omitempty"`
	InstSecs float64       `json:"instance_seconds,omitempty"`
	Egress   int64         `json:"egress_bytes,omitempty"`
}

// LedgerDiff rebuilds the meter usage incurred under the span, suitable for
// pricing.PriceBook.Bill. The record stores only the flattened diff (maps
// are too expensive for the hot path); this reassembles it on demand.
func (r SpanRecord) LedgerDiff() meter.Usage {
	ops := make(map[meter.Op]meter.Counts, len(r.Ops))
	for _, o := range r.Ops {
		ops[meter.Op{Service: o.Service, Name: o.Op}] = meter.Counts{Calls: o.Calls, Units: o.Units, Bytes: o.Bytes}
	}
	inst := make(map[string]float64, len(r.Inst))
	for _, i := range r.Inst {
		inst[i.Type] = i.Seconds
	}
	return meter.NewUsage(ops, inst, r.Egress)
}

// Attr returns the value of the named attribute ("" if absent).
func (r SpanRecord) Attr(key string) string {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Calls sums the billed API calls across the span's ledger diff.
func (r SpanRecord) Calls() int64 {
	var n int64
	for _, o := range r.Ops {
		n += o.Calls
	}
	return n
}

// Tracer emits parent/child spans for the pipeline and keeps the most
// recent finished spans in a bounded ring journal. Span IDs are sequential
// (no randomness: a traced run stays deterministic). Safe for concurrent
// use; all methods are nil-safe, and a nil Tracer hands out nil Spans whose
// whole API no-ops.
type Tracer struct {
	ledger *meter.Ledger
	snaps  sync.Pool // *meter.Compact before-readings, recycled across spans

	mu      sync.Mutex
	nextID  int64
	ring    []SpanRecord
	head    int // next write position
	n       int // filled entries
	dropped int64
}

// DefaultJournalCapacity bounds the span journal when no capacity is given.
const DefaultJournalCapacity = 4096

// NewTracer returns a tracer whose spans diff the given ledger. capacity
// bounds the journal (DefaultJournalCapacity if <= 0); once full, the
// oldest spans are dropped.
func NewTracer(ledger *meter.Ledger, capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Tracer{ledger: ledger, ring: make([]SpanRecord, capacity)}
}

// Span is an in-flight pipeline stage. Obtain spans from Tracer.Start or
// Span.Child; finish them with End. All methods are nil-safe.
type Span struct {
	tr      *Tracer
	id      int64
	parent  int64
	name    string
	attrs   []Attr
	err     string
	start   time.Time
	modeled time.Duration
	before  *meter.Compact

	mu    sync.Mutex
	ended bool
}

// Start begins a root span (nil on a nil tracer).
func (t *Tracer) Start(name string) *Span { return t.newSpan(name, 0) }

func (t *Tracer) newSpan(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{tr: t, id: id, parent: parent, name: name, start: time.Now()}
	if t.ledger != nil {
		box, _ := t.snaps.Get().(*meter.Compact)
		if box == nil {
			box = new(meter.Compact)
		}
		*box = t.ledger.CompactInto(*box)
		s.before = box
	}
	return s
}

// Child begins a span nested under s. A child of a nil span is a root span
// only if you have a tracer — here it is simply nil, keeping the no-op
// chain intact.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.newSpan(name, s.id)
}

// ChildOf begins a child of parent, or a root span when parent is nil.
// It is the form used by code paths that may or may not have been handed
// a parent (e.g. processQuery called directly vs. under RunQueryOn).
func (t *Tracer) ChildOf(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	if parent == nil {
		return t.Start(name)
	}
	return parent.Child(name)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make([]Attr, 0, 4)
	}
	s.attrs = append(s.attrs, Attr{key, value})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetError records an error on the span (no-op for nil error or span).
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.mu.Unlock()
}

// SetModeled sets the span's vtime-modeled duration.
func (s *Span) SetModeled(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.modeled = d
	s.mu.Unlock()
}

// AddModeled accumulates modeled time on the span (stages assembled from
// several modeled components, e.g. get + plan).
func (s *Span) AddModeled(d time.Duration) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.modeled += d
	s.mu.Unlock()
}

// End finishes the span: the wall duration is measured, the ledger diff
// since Start is attached, and the record enters the journal. End is
// idempotent; only the first call records.
//
// Ledger diffs are exact for synchronous drivers (one span active at a
// time per ledger). When concurrent workers share a ledger, a span's diff
// includes whatever its siblings billed in the same window — still useful
// as an attribution hint, and the parent span's diff remains exact.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		Attrs:   s.attrs,
		Err:     s.err,
		Wall:    time.Since(s.start),
		Modeled: s.modeled,
	}
	s.mu.Unlock()

	t := s.tr
	if t.ledger != nil {
		ops, inst, egress := t.ledger.SubSince(*s.before)
		t.snaps.Put(s.before)
		s.before = nil
		if len(ops) > 0 {
			rec.Ops = make([]OpCounts, 0, len(ops))
			for _, d := range ops {
				rec.Ops = append(rec.Ops, OpCounts{
					Service: d.Op.Service, Op: d.Op.Name,
					Calls: d.Counts.Calls, Units: d.Counts.Units, Bytes: d.Counts.Bytes,
				})
			}
			// Insertion sort: the diff holds a handful of ops, and the
			// closure-free form keeps the hot path allocation-lean.
			for i := 1; i < len(rec.Ops); i++ {
				for j := i; j > 0 && opLess(rec.Ops[j], rec.Ops[j-1]); j-- {
					rec.Ops[j], rec.Ops[j-1] = rec.Ops[j-1], rec.Ops[j]
				}
			}
		}
		if len(inst) > 0 {
			rec.Inst = make([]InstSeconds, 0, len(inst))
			for _, ts := range inst {
				rec.Inst = append(rec.Inst, InstSeconds{Type: ts.Type, Seconds: ts.Seconds})
				rec.InstSecs += ts.Seconds
			}
		}
		rec.Egress = egress
	}

	t.mu.Lock()
	if t.n == len(t.ring) {
		t.dropped++
	} else {
		t.n++
	}
	t.ring[t.head] = rec
	t.head = (t.head + 1) % len(t.ring)
	t.mu.Unlock()
}

// Spans returns the journal's finished spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, t.n)
	start := (t.head - t.n + len(t.ring)) % len(t.ring)
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Dropped reports how many finished spans have been evicted from the
// journal since creation.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// QuerySpans returns the span trees whose root carries attribute "id" ==
// queryID — the roots plus all their descendants, in span-ID order. Note
// the journal holds spans in End order (children before parents), so
// selection walks in ID order: parents are always created, and therefore
// numbered, before their children.
func (t *Tracer) QuerySpans(queryID string) []SpanRecord {
	all := t.Spans()
	sort.SliceStable(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	want := make(map[int64]bool)
	var out []SpanRecord
	for _, r := range all {
		sel := false
		if r.Parent == 0 {
			sel = r.Attr("id") == queryID
		} else {
			sel = want[r.Parent]
		}
		if sel {
			want[r.ID] = true
			out = append(out, r)
		}
	}
	return out
}

// WriteJSON dumps the journal (oldest first) as a JSON array.
func (t *Tracer) WriteJSON(w io.Writer) error {
	spans := t.Spans()
	if spans == nil {
		spans = []SpanRecord{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// FormatTree renders spans as an indented tree. Spans whose parent is not
// in the slice are treated as roots, so it works both on a full journal
// and on a QuerySpans selection.
func FormatTree(spans []SpanRecord) string {
	if len(spans) == 0 {
		return "(no spans)\n"
	}
	present := make(map[int64]bool, len(spans))
	for _, r := range spans {
		present[r.ID] = true
	}
	children := make(map[int64][]SpanRecord)
	var roots []SpanRecord
	for _, r := range spans {
		if r.Parent != 0 && present[r.Parent] {
			children[r.Parent] = append(children[r.Parent], r)
		} else {
			roots = append(roots, r)
		}
	}
	var b strings.Builder
	var walk func(r SpanRecord, depth int)
	walk = func(r SpanRecord, depth int) {
		indent := strings.Repeat("  ", depth)
		fmt.Fprintf(&b, "%s%s", indent, r.Name)
		var tags []string
		for _, a := range r.Attrs {
			tags = append(tags, a.Key+"="+a.Value)
		}
		if len(tags) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(tags, " "))
		}
		fmt.Fprintf(&b, "  modeled=%s wall=%s", r.Modeled.Round(time.Microsecond), r.Wall.Round(time.Microsecond))
		if calls := r.Calls(); calls > 0 {
			var units, bytes int64
			for _, o := range r.Ops {
				units += o.Units
				bytes += o.Bytes
			}
			fmt.Fprintf(&b, " billed: calls=%d units=%d bytes=%d", calls, units, bytes)
		}
		if r.Err != "" {
			fmt.Fprintf(&b, " err=%q", r.Err)
		}
		b.WriteByte('\n')
		kids := children[r.ID]
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].ID < kids[j].ID })
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].ID < roots[j].ID })
	for _, r := range roots {
		walk(r, 0)
	}
	return b.String()
}
