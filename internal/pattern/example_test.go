package pattern_test

import (
	"fmt"

	"repro/internal/pattern"
)

// The textual syntax mirrors Figure 2's graphical notation: / and // for
// the two axes, {val}/{cont} for the projection annotations, ~ for
// contains, in (lo,hi] for ranges, and $vars + where for value joins.
func ExampleParse() {
	q, err := pattern.Parse(`//painting[/name{val}, /year in ("1854","1865"]]`)
	if err != nil {
		panic(err)
	}
	fmt.Println("patterns:", len(q.Patterns))
	fmt.Println("rendered:", q.String())
	// Output:
	// patterns: 1
	// rendered: //painting[/name{val}, /year in ("1854","1865"]]
}

func ExampleTree_RootToLeafPaths() {
	q := pattern.MustParse(`//painting[/name, //painter[/name]]`)
	for _, p := range q.Patterns[0].RootToLeafPaths() {
		fmt.Println(p)
	}
	// Output:
	// //painting/name
	// //painting//painter/name
}

func ExamplePred_Matches() {
	year := pattern.Pred{Kind: pattern.Range, Lo: "1854", Hi: "1865", LoStrict: true}
	fmt.Println(year.Matches("1854"), year.Matches("1860"), year.Matches("1865"))
	// Output: false true true
}
