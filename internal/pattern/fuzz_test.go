package pattern

import "testing"

// FuzzParse: the tree-pattern parser never panics on arbitrary input, and
// for anything it accepts the rendered form is a fixed point — String()
// reparses to a query that renders identically. That fixed point is what
// the property tests in internal/core lean on when they generate random
// queries, render them and feed the text to the full pipeline.
func FuzzParse(f *testing.F) {
	f.Add(`//painting[/name{val}, //painter[/name{val}]]`)
	f.Add(`//item[/@id{val}, //description~"Zanzibar"]`)
	f.Add(`//open_auction[/price{val} in ["1","3000"], /seller $s], //person[/@id{val} $p] where $s = $p`)
	f.Add(`//closed_auction{cont}[/price="100"]`)
	f.Add(`person`)
	f.Add(`//a[`)
	f.Add(`//`)
	f.Add("//a=\"\n\"") // raw newline in a string literal
	f.Add(`//a~"back\\slash and \"quote\""`)
	f.Add("//a\x00b")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		text := q.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("accepted %q but rendering %q does not reparse: %v", input, text, err)
		}
		if again := q2.String(); again != text {
			t.Fatalf("rendering is not a fixed point:\n  input:  %q\n  first:  %q\n  second: %q", input, text, again)
		}
	})
}
