package pattern

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a query in the textual syntax below and returns its AST.
//
//	query    := pattern (',' pattern)* [ 'where' join (',' join)* ]
//	join     := '$'NAME '=' '$'NAME
//	pattern  := axis? node                       -- root axis defaults to //
//	node     := '@'? NAME annots? pred? var? kids?
//	annots   := '{' ('val'|'cont') (',' ('val'|'cont'))* '}'
//	pred     := '=' literal
//	         |  '~' literal                      -- contains(literal)
//	         |  'in' ('['|'(') literal ',' literal (']'|')')
//	var      := '$'NAME
//	kids     := '[' axis node (',' axis node)* ']'
//	axis     := '/' | '//'
//	literal  := '"' chars '"' | bareword
//
// Examples (the queries of Figure 2):
//
//	q1: //painting[/name{val}, //painter[/name{val}]]
//	q2: //painting[/description{cont}, /year="1854"]
//	q3: //painting[/name~"Lion", /painter[/name[/last{val}]]]
//	q4: //painting[/name{val}, /painter[/name[/last="Manet"]], /year in ("1854","1865"]]
//	q5: //museum[/name{val}, //painting[/@id $a]],
//	    //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b
func Parse(input string) (*Query, error) {
	p := &parser{lex: lexer{src: input}}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("pattern: parsing %q: %w", input, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for statically known queries; it panics on error.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokName
	tokString
	tokSlash       // /
	tokDoubleSlash // //
	tokAt
	tokDollar
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokTilde
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokName, tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

type lexer struct {
	src string
	pos int
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.' || r == ':'
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch c {
	case '/':
		if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			l.pos += 2
			return token{tokDoubleSlash, "//", start}, nil
		}
		l.pos++
		return token{tokSlash, "/", start}, nil
	case '@':
		l.pos++
		return token{tokAt, "@", start}, nil
	case '$':
		l.pos++
		return token{tokDollar, "$", start}, nil
	case '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case '=':
		l.pos++
		return token{tokEq, "=", start}, nil
	case '~':
		l.pos++
		return token{tokTilde, "~", start}, nil
	case '"':
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) {
			if l.src[l.pos] == '"' {
				l.pos++
				return token{tokString, b.String(), start}, nil
			}
			if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
				l.pos++
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return token{}, fmt.Errorf("unterminated string at offset %d", start)
	}
	if isNameRune(rune(c)) {
		end := l.pos
		for end < len(l.src) && isNameRune(rune(l.src[end])) {
			end++
		}
		t := token{tokName, l.src[l.pos:end], start}
		l.pos = end
		return t, nil
	}
	return token{}, fmt.Errorf("unexpected character %q at offset %d", c, l.pos)
}

type parser struct {
	lex    lexer
	tok    token
	peeked bool
}

func (p *parser) peek() (token, error) {
	if !p.peeked {
		t, err := p.lex.next()
		if err != nil {
			return token{}, err
		}
		p.tok, p.peeked = t, true
	}
	return p.tok, nil
}

func (p *parser) advance() (token, error) {
	t, err := p.peek()
	p.peeked = false
	return t, err
}

func (p *parser) expect(kind tokenKind, what string) (token, error) {
	t, err := p.advance()
	if err != nil {
		return token{}, err
	}
	if t.kind != kind {
		return token{}, fmt.Errorf("expected %s, got %s at offset %d", what, t, t.pos)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	for {
		t, err := p.parsePattern()
		if err != nil {
			return nil, err
		}
		q.Patterns = append(q.Patterns, t)
		nt, err := p.peek()
		if err != nil {
			return nil, err
		}
		if nt.kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	nt, err := p.peek()
	if err != nil {
		return nil, err
	}
	if nt.kind == tokName && nt.text == "where" {
		p.advance()
		for {
			j, err := p.parseJoin()
			if err != nil {
				return nil, err
			}
			q.Joins = append(q.Joins, j)
			nt, err := p.peek()
			if err != nil {
				return nil, err
			}
			if nt.kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if t, err := p.advance(); err != nil {
		return nil, err
	} else if t.kind != tokEOF {
		return nil, fmt.Errorf("trailing input at offset %d: %s", t.pos, t)
	}
	return q, nil
}

func (p *parser) parseJoin() (JoinCond, error) {
	if _, err := p.expect(tokDollar, "'$'"); err != nil {
		return JoinCond{}, err
	}
	a, err := p.expect(tokName, "variable name")
	if err != nil {
		return JoinCond{}, err
	}
	if _, err := p.expect(tokEq, "'='"); err != nil {
		return JoinCond{}, err
	}
	if _, err := p.expect(tokDollar, "'$'"); err != nil {
		return JoinCond{}, err
	}
	b, err := p.expect(tokName, "variable name")
	if err != nil {
		return JoinCond{}, err
	}
	return JoinCond{A: a.text, B: b.text}, nil
}

func (p *parser) parsePattern() (*Tree, error) {
	axis := Descendant
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokSlash || t.kind == tokDoubleSlash {
		p.advance()
		if t.kind == tokSlash {
			axis = Child
		}
	}
	root, err := p.parseNode(axis)
	if err != nil {
		return nil, err
	}
	return &Tree{Root: root}, nil
}

func (p *parser) parseNode(axis Axis) (*Node, error) {
	n := &Node{Axis: axis}
	t, err := p.peek()
	if err != nil {
		return nil, err
	}
	if t.kind == tokAt {
		p.advance()
		n.IsAttr = true
	}
	name, err := p.expect(tokName, "node label")
	if err != nil {
		return nil, err
	}
	n.Label = name.text

	// Annotations.
	if t, err := p.peek(); err != nil {
		return nil, err
	} else if t.kind == tokLBrace {
		p.advance()
		for {
			a, err := p.expect(tokName, "'val' or 'cont'")
			if err != nil {
				return nil, err
			}
			switch a.text {
			case "val":
				n.Val = true
			case "cont":
				n.Cont = true
			default:
				return nil, fmt.Errorf("unknown annotation %q at offset %d", a.text, a.pos)
			}
			t, err := p.advance()
			if err != nil {
				return nil, err
			}
			if t.kind == tokComma {
				continue
			}
			if t.kind == tokRBrace {
				break
			}
			return nil, fmt.Errorf("expected ',' or '}', got %s at offset %d", t, t.pos)
		}
	}

	// Predicate.
	t, err = p.peek()
	if err != nil {
		return nil, err
	}
	switch {
	case t.kind == tokEq:
		p.advance()
		c, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		n.Pred = Pred{Kind: Eq, Const: c}
	case t.kind == tokTilde:
		p.advance()
		c, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		n.Pred = Pred{Kind: Contains, Const: c}
	case t.kind == tokName && t.text == "in":
		p.advance()
		pred, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		n.Pred = pred
	}

	// Variable binding.
	if t, err := p.peek(); err != nil {
		return nil, err
	} else if t.kind == tokDollar {
		p.advance()
		v, err := p.expect(tokName, "variable name")
		if err != nil {
			return nil, err
		}
		n.Var = v.text
	}

	// Children.
	if t, err := p.peek(); err != nil {
		return nil, err
	} else if t.kind == tokLBracket {
		p.advance()
		for {
			at, err := p.advance()
			if err != nil {
				return nil, err
			}
			var axis Axis
			switch at.kind {
			case tokSlash:
				axis = Child
			case tokDoubleSlash:
				axis = Descendant
			default:
				return nil, fmt.Errorf("expected '/' or '//', got %s at offset %d", at, at.pos)
			}
			c, err := p.parseNode(axis)
			if err != nil {
				return nil, err
			}
			c.Parent = n
			n.Children = append(n.Children, c)
			t, err := p.advance()
			if err != nil {
				return nil, err
			}
			if t.kind == tokComma {
				continue
			}
			if t.kind == tokRBracket {
				break
			}
			return nil, fmt.Errorf("expected ',' or ']', got %s at offset %d", t, t.pos)
		}
	}
	return n, nil
}

func (p *parser) parseLiteral() (string, error) {
	t, err := p.advance()
	if err != nil {
		return "", err
	}
	if t.kind != tokString && t.kind != tokName {
		return "", fmt.Errorf("expected literal, got %s at offset %d", t, t.pos)
	}
	return t.text, nil
}

func (p *parser) parseRange() (Pred, error) {
	open, err := p.advance()
	if err != nil {
		return Pred{}, err
	}
	pred := Pred{Kind: Range}
	switch open.kind {
	case tokLBracket:
	case tokLParen:
		pred.LoStrict = true
	default:
		return Pred{}, fmt.Errorf("expected '[' or '(', got %s at offset %d", open, open.pos)
	}
	lo, err := p.parseLiteral()
	if err != nil {
		return Pred{}, err
	}
	pred.Lo = lo
	if _, err := p.expect(tokComma, "','"); err != nil {
		return Pred{}, err
	}
	hi, err := p.parseLiteral()
	if err != nil {
		return Pred{}, err
	}
	pred.Hi = hi
	closeTok, err := p.advance()
	if err != nil {
		return Pred{}, err
	}
	switch closeTok.kind {
	case tokRBracket:
	case tokRParen:
		pred.HiStrict = true
	default:
		return Pred{}, fmt.Errorf("expected ']' or ')', got %s at offset %d", closeTok, closeTok.pos)
	}
	return pred, nil
}
