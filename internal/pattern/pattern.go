// Package pattern implements the paper's query language (Section 4): value
// joins over tree patterns, an expressive fragment of XQuery.
//
// A tree pattern is a tree of labeled nodes. Each node is an XML element or
// attribute name; edges are parent-child (single lines in Figure 2) or
// ancestor-descendant (double lines). An element node may carry the
// annotations val (its string value is returned) and/or cont (the full XML
// subtree is returned); an attribute node may carry val. Any node may carry
// one predicate on its value:
//
//   - equality      = c
//   - containment   contains(c), true if the value contains the word c
//   - range         a ≤ val ≤ b (with either bound optionally strict)
//
// A query is a list of tree patterns plus value-join conditions equating
// the values of two nodes from (usually different) patterns, drawn as
// dashed lines in Figure 2.
//
// The package also defines the textual syntax parsed by Parse (see the
// grammar there) and the root-to-leaf path decomposition used by the LUP
// look-up strategy.
package pattern

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Axis is the relationship of a pattern node to its parent.
type Axis uint8

const (
	// Child is the parent-child axis (/ in path syntax, single line in
	// Figure 2).
	Child Axis = iota
	// Descendant is the ancestor-descendant axis (//, double line).
	Descendant
)

func (a Axis) String() string {
	if a == Child {
		return "/"
	}
	return "//"
}

// PredKind discriminates value predicates.
type PredKind uint8

const (
	// NoPred means the node carries no predicate.
	NoPred PredKind = iota
	// Eq is the equality predicate = c.
	Eq
	// Contains is the word-containment predicate contains(c).
	Contains
	// Range is the interval predicate a ≤ val ≤ b.
	Range
)

// Pred is a predicate on a node's string value.
type Pred struct {
	Kind PredKind
	// Const is the constant of Eq and Contains.
	Const string
	// Lo/Hi bound Range; LoStrict/HiStrict make a bound exclusive.
	Lo, Hi             string
	LoStrict, HiStrict bool
}

// Matches evaluates the predicate against a node value. Range bounds
// compare numerically when both the bound and the value parse as numbers,
// lexicographically otherwise (document values are strings). An empty
// range bound is unbounded, so one-sided comparisons (produced e.g. by the
// XQuery translation of `$x/year > "1854"`) work.
func (p Pred) Matches(value string) bool {
	switch p.Kind {
	case NoPred:
		return true
	case Eq:
		return value == p.Const
	case Contains:
		return xmltree.ContainsWord(value, p.Const)
	case Range:
		if p.Lo != "" {
			lo := compareValues(value, p.Lo)
			if lo < 0 || (lo == 0 && p.LoStrict) {
				return false
			}
		}
		if p.Hi != "" {
			hi := compareValues(value, p.Hi)
			if hi > 0 || (hi == 0 && p.HiStrict) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// compareValues compares two value strings numerically when possible.
func compareValues(a, b string) int {
	fa, errA := strconv.ParseFloat(strings.TrimSpace(a), 64)
	fb, errB := strconv.ParseFloat(strings.TrimSpace(b), 64)
	if errA == nil && errB == nil {
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(a, b)
}

// quoteLiteral quotes a predicate constant in the form the lexer reads
// back: only '\' and '"' are escaped, every other byte (including control
// characters) is written raw. Go-style %q escaping would not round-trip —
// the lexer has no escape table, it just skips a backslash and takes the
// next byte literally, so `\n` would come back as the letter 'n'.
func quoteLiteral(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' || s[i] == '"' {
			b.WriteByte('\\')
		}
		b.WriteByte(s[i])
	}
	b.WriteByte('"')
	return b.String()
}

func (p Pred) String() string {
	switch p.Kind {
	case NoPred:
		return ""
	case Eq:
		return "=" + quoteLiteral(p.Const)
	case Contains:
		return "~" + quoteLiteral(p.Const)
	case Range:
		lb, rb := "[", "]"
		if p.LoStrict {
			lb = "("
		}
		if p.HiStrict {
			rb = ")"
		}
		return fmt.Sprintf(" in %s%s,%s%s", lb, quoteLiteral(p.Lo), quoteLiteral(p.Hi), rb)
	default:
		return "?"
	}
}

// Node is one tree-pattern node.
type Node struct {
	// Label is the element or attribute name.
	Label string
	// IsAttr marks attribute nodes (@name in Figure 2).
	IsAttr bool
	// Axis relates the node to its parent. For a pattern root, Child
	// means "must be the document root element" and Descendant (the
	// default) "may match anywhere in the document".
	Axis Axis
	// Val and Cont are the projection annotations of Section 4.
	Val  bool
	Cont bool
	// Pred is the node's value predicate, if any.
	Pred Pred
	// Var names the node as a value-join endpoint ($x in the syntax).
	Var string

	Children []*Node
	Parent   *Node
}

// Tree is one tree pattern.
type Tree struct {
	Root *Node
}

// JoinCond equates the values of two variable-bound nodes.
type JoinCond struct {
	A, B string // variable names
}

// Query is a list of tree patterns connected by value joins.
type Query struct {
	// Name optionally identifies the query (q1..q10 in the workload).
	Name     string
	Patterns []*Tree
	Joins    []JoinCond
}

// Errors returned by Validate and Parse.
var (
	ErrNoPatterns   = errors.New("pattern: query has no patterns")
	ErrUnknownVar   = errors.New("pattern: join references unknown variable")
	ErrDuplicateVar = errors.New("pattern: duplicate variable")
	ErrAttrChildren = errors.New("pattern: attribute nodes cannot have children")
	ErrContOnAttr   = errors.New("pattern: cont annotation on attribute node")
)

// Walk visits the nodes of a tree in document order (preorder).
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// Nodes returns the pattern's nodes in preorder.
func (t *Tree) Nodes() []*Node {
	var out []*Node
	t.Walk(func(n *Node) { out = append(out, n) })
	return out
}

// Outputs returns the annotated (val/cont) nodes in preorder: the columns
// of the pattern's result.
func (t *Tree) Outputs() []*Node {
	var out []*Node
	t.Walk(func(n *Node) {
		if n.Val || n.Cont {
			out = append(out, n)
		}
	})
	return out
}

// Vars maps variable names to their nodes.
func (q *Query) Vars() map[string]*Node {
	vars := make(map[string]*Node)
	for _, t := range q.Patterns {
		t.Walk(func(n *Node) {
			if n.Var != "" {
				vars[n.Var] = n
			}
		})
	}
	return vars
}

// Outputs returns the annotated nodes across all patterns, in pattern then
// preorder: the result columns of the query.
func (q *Query) Outputs() []*Node {
	var out []*Node
	for _, t := range q.Patterns {
		out = append(out, t.Outputs()...)
	}
	return out
}

// Validate checks structural well-formedness: at least one pattern, parent
// pointers consistent, attribute nodes childless and without cont, join
// variables defined exactly once.
func (q *Query) Validate() error {
	if len(q.Patterns) == 0 {
		return ErrNoPatterns
	}
	seen := make(map[string]bool)
	for _, t := range q.Patterns {
		var err error
		t.Walk(func(n *Node) {
			if err != nil {
				return
			}
			if n.IsAttr {
				if len(n.Children) > 0 {
					err = fmt.Errorf("%w: @%s", ErrAttrChildren, n.Label)
					return
				}
				if n.Cont {
					err = fmt.Errorf("%w: @%s", ErrContOnAttr, n.Label)
					return
				}
			}
			for _, c := range n.Children {
				if c.Parent != n {
					err = fmt.Errorf("pattern: broken parent pointer under %s", n.Label)
					return
				}
			}
			if n.Var != "" {
				if seen[n.Var] {
					err = fmt.Errorf("%w: $%s", ErrDuplicateVar, n.Var)
					return
				}
				seen[n.Var] = true
			}
		})
		if err != nil {
			return err
		}
	}
	for _, j := range q.Joins {
		if !seen[j.A] {
			return fmt.Errorf("%w: $%s", ErrUnknownVar, j.A)
		}
		if !seen[j.B] {
			return fmt.Errorf("%w: $%s", ErrUnknownVar, j.B)
		}
	}
	return nil
}

// PathStep is one step of a root-to-leaf query path.
type PathStep struct {
	Axis   Axis
	Label  string
	IsAttr bool
}

// Path is a root-to-leaf label path through a pattern, the unit the LUP
// look-up matches against indexed data paths (Section 5.2).
type Path []PathStep

func (p Path) String() string {
	var b strings.Builder
	for _, s := range p {
		b.WriteString(s.Axis.String())
		if s.IsAttr {
			b.WriteString("@")
		}
		b.WriteString(s.Label)
	}
	return b.String()
}

// RootToLeafPaths decomposes the pattern into its root-to-leaf paths, in
// left-to-right leaf order. The first step carries the root's axis.
func (t *Tree) RootToLeafPaths() []Path {
	var out []Path
	var rec func(n *Node, prefix Path)
	rec = func(n *Node, prefix Path) {
		step := PathStep{Axis: n.Axis, Label: n.Label, IsAttr: n.IsAttr}
		path := append(append(Path{}, prefix...), step)
		if len(n.Children) == 0 {
			out = append(out, path)
			return
		}
		for _, c := range n.Children {
			rec(c, path)
		}
	}
	if t.Root != nil {
		rec(t.Root, nil)
	}
	return out
}

// Labels returns the distinct node labels of the query (attribute labels
// prefixed with "@"), sorted — the LU/LUI look-up terms before key
// encoding.
func (q *Query) Labels() []string {
	set := make(map[string]bool)
	for _, t := range q.Patterns {
		t.Walk(func(n *Node) {
			l := n.Label
			if n.IsAttr {
				l = "@" + l
			}
			set[l] = true
		})
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders the query in the textual syntax accepted by Parse.
func (q *Query) String() string {
	var b strings.Builder
	for i, t := range q.Patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		writeNode(&b, t.Root)
	}
	if len(q.Joins) > 0 {
		b.WriteString(" where ")
		for i, j := range q.Joins {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "$%s = $%s", j.A, j.B)
		}
	}
	return b.String()
}

func writeNode(b *strings.Builder, n *Node) {
	b.WriteString(n.Axis.String())
	if n.IsAttr {
		b.WriteString("@")
	}
	b.WriteString(n.Label)
	if n.Val || n.Cont {
		b.WriteString("{")
		if n.Val {
			b.WriteString("val")
		}
		if n.Cont {
			if n.Val {
				b.WriteString(",")
			}
			b.WriteString("cont")
		}
		b.WriteString("}")
	}
	if n.Pred.Kind != NoPred {
		b.WriteString(n.Pred.String())
	}
	if n.Var != "" {
		b.WriteString(" $" + n.Var)
	}
	if len(n.Children) > 0 {
		b.WriteString("[")
		for i, c := range n.Children {
			if i > 0 {
				b.WriteString(", ")
			}
			writeNode(b, c)
		}
		b.WriteString("]")
	}
}
