package pattern

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseQ1(t *testing.T) {
	q := MustParse(`//painting[/name{val}, //painter[/name{val}]]`)
	if len(q.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
	root := q.Patterns[0].Root
	if root.Label != "painting" || root.Axis != Descendant {
		t.Errorf("root = %+v", root)
	}
	if len(root.Children) != 2 {
		t.Fatalf("children = %d", len(root.Children))
	}
	name := root.Children[0]
	if name.Label != "name" || name.Axis != Child || !name.Val || name.Cont {
		t.Errorf("name = %+v", name)
	}
	painter := root.Children[1]
	if painter.Axis != Descendant || painter.Label != "painter" {
		t.Errorf("painter = %+v", painter)
	}
	if painter.Children[0].Label != "name" || !painter.Children[0].Val {
		t.Errorf("painter/name = %+v", painter.Children[0])
	}
}

func TestParsePredicates(t *testing.T) {
	q := MustParse(`//painting[/description{cont}, /year="1854"]`)
	year := q.Patterns[0].Children()[1]
	if year.Pred.Kind != Eq || year.Pred.Const != "1854" {
		t.Errorf("year pred = %+v", year.Pred)
	}
	desc := q.Patterns[0].Children()[0]
	if !desc.Cont || desc.Val {
		t.Errorf("description = %+v", desc)
	}

	q = MustParse(`//painting[/name~"Lion"]`)
	if p := q.Patterns[0].Children()[0].Pred; p.Kind != Contains || p.Const != "Lion" {
		t.Errorf("contains pred = %+v", p)
	}

	q = MustParse(`//painting[/year in ("1854","1865"]]`)
	p := q.Patterns[0].Children()[0].Pred
	if p.Kind != Range || p.Lo != "1854" || p.Hi != "1865" || !p.LoStrict || p.HiStrict {
		t.Errorf("range pred = %+v", p)
	}
}

// Children is a test helper: the root's children of pattern t.
func (t *Tree) Children() []*Node { return t.Root.Children }

func TestParseAttributesAndVars(t *testing.T) {
	q := MustParse(`//museum[/name{val}, //painting[/@id $a]], //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`)
	if len(q.Patterns) != 2 || len(q.Joins) != 1 {
		t.Fatalf("patterns=%d joins=%d", len(q.Patterns), len(q.Joins))
	}
	if q.Joins[0] != (JoinCond{A: "a", B: "b"}) {
		t.Errorf("join = %+v", q.Joins[0])
	}
	vars := q.Vars()
	if vars["a"] == nil || !vars["a"].IsAttr || vars["a"].Label != "id" {
		t.Errorf("$a = %+v", vars["a"])
	}
}

func TestParseBareLiteralAndEscapes(t *testing.T) {
	q := MustParse(`//a[/b=1854]`)
	if p := q.Patterns[0].Children()[0].Pred; p.Const != "1854" {
		t.Errorf("bare literal = %+v", p)
	}
	q = MustParse(`//a[/b="say \"hi\""]`)
	if p := q.Patterns[0].Children()[0].Pred; p.Const != `say "hi"` {
		t.Errorf("escaped literal = %+v", p)
	}
}

func TestParseRootAxis(t *testing.T) {
	q := MustParse(`/site[//item]`)
	if q.Patterns[0].Root.Axis != Child {
		t.Error("explicit / on root not parsed as Child")
	}
	q = MustParse(`site`)
	if q.Patterns[0].Root.Axis != Descendant {
		t.Error("default root axis must be Descendant")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"//a[",
		"//a[/b",
		"//a[b]",
		`//a[/b="x]`,
		"//a{value}",
		"//a in (1,2",
		"//a $x, //b $x",          // duplicate variable
		"//a where $x = $y",       // unknown vars
		"//a[/@id{cont}]",         // cont on attribute
		"//a[/@id[/b]]",           // children on attribute
		"//a //b",                 // trailing input
		`//a[/b~"x" extra]`,       // junk in child list
		"//a[/b in [1,2] [/c]] ]", // stray bracket
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
	if _, err := Parse("//a $x, //b $x"); !errors.Is(err, ErrDuplicateVar) {
		t.Errorf("duplicate var error = %v", err)
	}
	if _, err := Parse("//a where $x = $y"); !errors.Is(err, ErrUnknownVar) {
		t.Errorf("unknown var error = %v", err)
	}
}

func TestPredMatches(t *testing.T) {
	cases := []struct {
		pred  Pred
		value string
		want  bool
	}{
		{Pred{}, "anything", true},
		{Pred{Kind: Eq, Const: "1854"}, "1854", true},
		{Pred{Kind: Eq, Const: "1854"}, "1855", false},
		{Pred{Kind: Contains, Const: "Lion"}, "The Lion Hunt", true},
		{Pred{Kind: Contains, Const: "Lion"}, "The Lioness", false},
		{Pred{Kind: Range, Lo: "1854", Hi: "1865", LoStrict: true}, "1854", false},
		{Pred{Kind: Range, Lo: "1854", Hi: "1865", LoStrict: true}, "1855", true},
		{Pred{Kind: Range, Lo: "1854", Hi: "1865"}, "1865", true},
		{Pred{Kind: Range, Lo: "1854", Hi: "1865", HiStrict: true}, "1865", false},
		// Numeric, not lexicographic: "900.00" < "1000.00".
		{Pred{Kind: Range, Lo: "900", Hi: "1000"}, "950.50", true},
		{Pred{Kind: Range, Lo: "1000", Hi: "2000"}, "900.00", false},
		// Non-numeric ranges compare lexicographically.
		{Pred{Kind: Range, Lo: "apple", Hi: "mango"}, "grape", true},
		{Pred{Kind: Range, Lo: "apple", Hi: "mango"}, "zebra", false},
	}
	for _, c := range cases {
		if got := c.pred.Matches(c.value); got != c.want {
			t.Errorf("%+v.Matches(%q) = %v, want %v", c.pred, c.value, got, c.want)
		}
	}
}

func TestRootToLeafPaths(t *testing.T) {
	q := MustParse(`//painting[/name{val}, //painter[/name[/last]]]`)
	paths := q.Patterns[0].RootToLeafPaths()
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
	if got := paths[0].String(); got != "//painting/name" {
		t.Errorf("path 0 = %q", got)
	}
	if got := paths[1].String(); got != "//painting//painter/name/last" {
		t.Errorf("path 1 = %q", got)
	}
	// Single-node pattern: one path of one step.
	q = MustParse(`//item`)
	paths = q.Patterns[0].RootToLeafPaths()
	if len(paths) != 1 || paths[0].String() != "//item" {
		t.Errorf("paths = %v", paths)
	}
}

func TestLabels(t *testing.T) {
	q := MustParse(`//museum[/name, //painting[/@id $a]], //painting[/@id $b] where $a = $b`)
	got := q.Labels()
	want := []string{"@id", "museum", "name", "painting"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestOutputs(t *testing.T) {
	q := MustParse(`//painting[/name{val}, /description{cont}, /year]`)
	outs := q.Outputs()
	if len(outs) != 2 || outs[0].Label != "name" || outs[1].Label != "description" {
		t.Errorf("outputs = %v", outs)
	}
}

// Property: String() round-trips through Parse for the whole workload-style
// grammar subset we generate here.
func TestStringParseRoundTrip(t *testing.T) {
	samples := []string{
		`//painting[/name{val}, //painter[/name{val}]]`,
		`//painting[/description{cont}, /year="1854"]`,
		`//painting[/name~"Lion", /painter[/name[/last{val}]]]`,
		`//painting[/name{val}, /painter[/name[/last="Manet"]], /year in ("1854","1865"]]`,
		`//museum[/name{val}, //painting[/@id $a]], //painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`,
		`/site[//item[/name{val,cont}]]`,
	}
	for _, src := range samples {
		q1 := MustParse(src)
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", src, q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed: %q -> %q", q1.String(), q2.String())
		}
	}
}

// Property: for random small patterns built programmatically, String then
// Parse preserves structure.
func TestRoundTripProperty(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	var buildNode func(seed *uint64, depth int, axis Axis) *Node
	next := func(seed *uint64) uint64 {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		return *seed >> 33
	}
	buildNode = func(seed *uint64, depth int, axis Axis) *Node {
		n := &Node{Label: labels[next(seed)%4], Axis: axis}
		switch next(seed) % 5 {
		case 0:
			n.Val = true
		case 1:
			n.Cont = true
		case 2:
			n.Pred = Pred{Kind: Eq, Const: "v"}
		case 3:
			n.Pred = Pred{Kind: Range, Lo: "1", Hi: "5", HiStrict: next(seed)%2 == 0}
		}
		if depth < 3 {
			kids := int(next(seed) % 3)
			for i := 0; i < kids; i++ {
				ax := Child
				if next(seed)%2 == 0 {
					ax = Descendant
				}
				c := buildNode(seed, depth+1, ax)
				c.Parent = n
				n.Children = append(n.Children, c)
			}
		}
		return n
	}
	f := func(s uint64) bool {
		q := &Query{Patterns: []*Tree{{Root: buildNode(&s, 0, Descendant)}}}
		q2, err := Parse(q.String())
		if err != nil {
			return false
		}
		return q.String() == q2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
