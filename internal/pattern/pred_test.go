package pattern

import (
	"testing"
	"testing/quick"
)

func TestPredStringForms(t *testing.T) {
	cases := []struct {
		pred Pred
		want string
	}{
		{Pred{}, ""},
		{Pred{Kind: Eq, Const: "1854"}, `="1854"`},
		{Pred{Kind: Contains, Const: "Lion"}, `~"Lion"`},
		{Pred{Kind: Range, Lo: "1", Hi: "5"}, ` in ["1","5"]`},
		{Pred{Kind: Range, Lo: "1", Hi: "5", LoStrict: true}, ` in ("1","5"]`},
		{Pred{Kind: Range, Lo: "1", Hi: "5", HiStrict: true}, ` in ["1","5")`},
	}
	for _, c := range cases {
		if got := c.pred.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.pred, got, c.want)
		}
	}
}

func TestOpenEndedRanges(t *testing.T) {
	// Empty bounds are unbounded (produced by the XQuery translation of
	// one-sided comparisons).
	lo := Pred{Kind: Range, Lo: "100", LoStrict: true}
	if !lo.Matches("101") || lo.Matches("100") || lo.Matches("5") {
		t.Error("open upper bound broken")
	}
	hi := Pred{Kind: Range, Hi: "100"}
	if !hi.Matches("100") || !hi.Matches("5") || hi.Matches("101") {
		t.Error("open lower bound broken")
	}
}

// Property: a closed range always contains its own bounds, a fully strict
// range never does, and membership is monotone for numeric values.
func TestRangeProperty(t *testing.T) {
	f := func(a, b int16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		closed := Pred{Kind: Range, Lo: itoa(lo), Hi: itoa(hi)}
		open := Pred{Kind: Range, Lo: itoa(lo), Hi: itoa(hi), LoStrict: true, HiStrict: true}
		if !closed.Matches(itoa(lo)) || !closed.Matches(itoa(hi)) {
			return false
		}
		if open.Matches(itoa(lo)) || open.Matches(itoa(hi)) {
			return false
		}
		mid := (lo + hi) / 2
		if mid != lo && mid != hi && (!closed.Matches(itoa(mid)) || !open.Matches(itoa(mid))) {
			return false
		}
		return !closed.Matches(itoa(lo-1)) && !closed.Matches(itoa(hi+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [8]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}
