// Package pricing holds the cloud provider's price book (Table 3 of the
// paper) and converts metered usage into dollars.
//
// The paper's experiments ran in the AWS Asia Pacific (Singapore) region in
// September-October 2012; Singapore2012 reproduces those prices verbatim.
// The SimpleDB prices (used only by the Section 8.4 comparison with the
// earlier system [8]) are not part of Table 3; they are calibrated so that
// the per-MB cost ratios of Tables 7-8 hold.
package pricing

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/meter"
)

// GB is the number of bytes the provider bills as one gigabyte.
const GB = 1 << 30

// USD is an amount of money in dollars.
type USD float64

// String formats the amount the way the paper prints prices.
func (u USD) String() string {
	return fmt.Sprintf("$%.5f", float64(u))
}

// PriceBook lists every unit price relevant to the warehouse, mirroring
// Section 7.2 of the paper.
type PriceBook struct {
	// File store (S3).
	STMonthGB USD // ST$m,GB: storing 1 GB for one month
	STPut     USD // STput$: per document storage request
	STGet     USD // STget$: per document retrieval request

	// Index store (DynamoDB).
	IDXMonthGB USD // IDX$m,GB: storing 1 GB of index for one month
	IDXPut     USD // IDXput$: per row inserted
	IDXGet     USD // IDXget$: per row retrieved
	// Provisioned throughput, billed per capacity-unit-hour and per table
	// (so per shard when the index is hash-partitioned). 2012 DynamoDB
	// charged $0.01/hour per 10 write units and per 50 read units.
	IDXWriteUnitHour USD // one provisioned write unit for one hour
	IDXReadUnitHour  USD // one provisioned read unit for one hour

	// Legacy index store (SimpleDB), for the comparison with [8].
	SDBMonthGB USD
	SDBPut     USD
	SDBGet     USD

	// Virtual machines, per instance type name (e.g. "l", "xl").
	VMHour map[string]USD

	// Queue service, per API request.
	QSRequest USD

	// Data transferred out of the cloud, per GB.
	EgressGB USD
}

// Singapore2012 returns the AWS Singapore price book of Table 3
// (September-October 2012).
func Singapore2012() PriceBook {
	return PriceBook{
		STMonthGB:        0.125,
		STPut:            0.000011,
		STGet:            0.0000011,
		IDXMonthGB:       1.14,
		IDXPut:           0.00000032,
		IDXGet:           0.000000032,
		IDXWriteUnitHour: 0.001,
		IDXReadUnitHour:  0.0002,
		// SimpleDB (2012): billed by box-usage; expressed here as
		// effective per-request prices, an order of magnitude above
		// DynamoDB, plus the 0.275 $/GB-month storage price the paper
		// reports for the index of [8].
		SDBMonthGB: 0.275,
		SDBPut:     0.0000056,
		SDBGet:     0.00000056,
		VMHour:     map[string]USD{"l": 0.34, "xl": 0.68},
		QSRequest:  0.000001,
		EgressGB:   0.19,
	}
}

// Invoice decomposes a bill by service, as in Table 6 and Figure 12.
type Invoice struct {
	Lines map[string]USD
}

// Total sums all lines.
func (inv Invoice) Total() USD {
	var t USD
	for _, v := range inv.Lines {
		t += v
	}
	return t
}

// Line returns the amount billed for one service (zero if absent).
func (inv Invoice) Line(service string) USD { return inv.Lines[service] }

// Add merges another invoice into a new one.
func (inv Invoice) Add(other Invoice) Invoice {
	sum := Invoice{Lines: make(map[string]USD, len(inv.Lines))}
	for k, v := range inv.Lines {
		sum.Lines[k] += v
	}
	for k, v := range other.Lines {
		sum.Lines[k] += v
	}
	return sum
}

// String renders the invoice with deterministic line order.
func (inv Invoice) String() string {
	keys := make([]string, 0, len(inv.Lines))
	for k := range inv.Lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%-10s %s\n", k, inv.Lines[k])
	}
	fmt.Fprintf(&b, "%-10s %s\n", "total", inv.Total())
	return b.String()
}

// Bill converts a usage snapshot into an invoice. Request-based services are
// billed per the paper's model:
//
//   - s3: STPut per put call, STGet per get/list call;
//   - dynamodb: IDXPut per row written (a batch writing 25 rows bills 25
//     units), IDXGet per row read;
//   - simpledb: same scheme with the SimpleDB prices;
//   - sqs: QSRequest per API call of any kind;
//   - ec2: VMHour x fractional busy hours, per instance type;
//   - egress: EgressGB x outbound GB.
//
// Monthly storage is billed separately by StorageMonthly, since it depends
// on the billing horizon rather than on activity.
func (p PriceBook) Bill(u meter.Usage) Invoice {
	inv := Invoice{Lines: make(map[string]USD)}
	add := func(service string, amount USD) {
		if amount != 0 {
			inv.Lines[service] += amount
		}
	}
	for _, op := range u.Ops() {
		c := u.Get(op.Service, op.Name)
		switch op.Service {
		case "s3":
			if op.Name == "put" {
				add("s3", p.STPut*USD(c.Calls))
			} else {
				add("s3", p.STGet*USD(c.Calls))
			}
		case "dynamodb":
			if op.Name == "put" {
				add("dynamodb", p.IDXPut*USD(c.Units))
			} else {
				add("dynamodb", p.IDXGet*USD(c.Units))
			}
		case "simpledb":
			if op.Name == "put" {
				add("simpledb", p.SDBPut*USD(c.Units))
			} else {
				add("simpledb", p.SDBGet*USD(c.Units))
			}
		case "sqs":
			add("sqs", p.QSRequest*USD(c.Calls))
		default:
			// Unpriced service: ignored, consistent with the paper's
			// model which only bills the services above.
		}
	}
	for _, t := range u.InstanceTypes() {
		price, ok := p.VMHour[t]
		if !ok {
			continue
		}
		add("ec2", price*USD(u.InstanceSeconds(t)/3600))
	}
	add("egress", p.EgressGB*USD(float64(u.EgressBytes())/GB))
	return inv
}

// StorageMonthly bills one month of storage: dataBytes in the file store and
// indexBytes in the index store of the named backend ("dynamodb" or
// "simpledb").
func (p PriceBook) StorageMonthly(dataBytes, indexBytes int64, backend string) Invoice {
	inv := Invoice{Lines: make(map[string]USD)}
	if dataBytes > 0 {
		inv.Lines["s3"] = p.STMonthGB * USD(float64(dataBytes)/GB)
	}
	idxPrice := p.IDXMonthGB
	if backend == "simpledb" {
		idxPrice = p.SDBMonthGB
	}
	if indexBytes > 0 {
		inv.Lines[backend] = idxPrice * USD(float64(indexBytes)/GB)
	}
	return inv
}
