package pricing

import (
	"math"
	"strings"
	"testing"

	"repro/internal/meter"
)

func approx(a, b USD) bool { return math.Abs(float64(a-b)) < 1e-12 }

func TestSingapore2012MatchesTable3(t *testing.T) {
	p := Singapore2012()
	cases := []struct {
		name string
		got  USD
		want USD
	}{
		{"STMonthGB", p.STMonthGB, 0.125},
		{"STPut", p.STPut, 0.000011},
		{"STGet", p.STGet, 0.0000011},
		{"IDXMonthGB", p.IDXMonthGB, 1.14},
		{"IDXPut", p.IDXPut, 0.00000032},
		{"IDXGet", p.IDXGet, 0.000000032},
		{"VMHour[l]", p.VMHour["l"], 0.34},
		{"VMHour[xl]", p.VMHour["xl"], 0.68},
		{"QSRequest", p.QSRequest, 0.000001},
		{"EgressGB", p.EgressGB, 0.19},
	}
	for _, c := range cases {
		if !approx(c.got, c.want) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestBillS3(t *testing.T) {
	p := Singapore2012()
	l := meter.NewLedger()
	l.Record("s3", "put", 100, 100, 0)
	l.Record("s3", "get", 1000, 1000, 0)
	inv := p.Bill(l.Snapshot())
	want := p.STPut*100 + p.STGet*1000
	if !approx(inv.Line("s3"), want) {
		t.Errorf("s3 line = %v, want %v", inv.Line("s3"), want)
	}
}

func TestBillKVStoresPerUnit(t *testing.T) {
	p := Singapore2012()
	l := meter.NewLedger()
	// One batch call writing 25 rows must bill 25 put units.
	l.Record("dynamodb", "put", 1, 25, 0)
	l.Record("dynamodb", "get", 1, 4, 0)
	l.Record("simpledb", "put", 1, 25, 0)
	inv := p.Bill(l.Snapshot())
	if !approx(inv.Line("dynamodb"), p.IDXPut*25+p.IDXGet*4) {
		t.Errorf("dynamodb line = %v", inv.Line("dynamodb"))
	}
	if !approx(inv.Line("simpledb"), p.SDBPut*25) {
		t.Errorf("simpledb line = %v", inv.Line("simpledb"))
	}
}

func TestBillEC2FractionalHours(t *testing.T) {
	p := Singapore2012()
	l := meter.NewLedger()
	l.AddInstanceSeconds("l", 1800) // half an hour
	l.AddInstanceSeconds("xl", 3600)
	inv := p.Bill(l.Snapshot())
	want := p.VMHour["l"]*0.5 + p.VMHour["xl"]*1
	if !approx(inv.Line("ec2"), want) {
		t.Errorf("ec2 line = %v, want %v", inv.Line("ec2"), want)
	}
}

func TestBillUnknownInstanceTypeIgnored(t *testing.T) {
	p := Singapore2012()
	l := meter.NewLedger()
	l.AddInstanceSeconds("quantum", 3600)
	if got := p.Bill(l.Snapshot()).Line("ec2"); got != 0 {
		t.Errorf("unknown instance billed %v", got)
	}
}

func TestBillEgress(t *testing.T) {
	p := Singapore2012()
	l := meter.NewLedger()
	l.AddEgress(GB / 2)
	inv := p.Bill(l.Snapshot())
	if !approx(inv.Line("egress"), p.EgressGB/2) {
		t.Errorf("egress line = %v", inv.Line("egress"))
	}
}

func TestBillSQSPerCall(t *testing.T) {
	p := Singapore2012()
	l := meter.NewLedger()
	l.Record("sqs", "send", 3, 3, 100)
	l.Record("sqs", "receive", 2, 2, 100)
	l.Record("sqs", "delete", 2, 2, 0)
	inv := p.Bill(l.Snapshot())
	if !approx(inv.Line("sqs"), p.QSRequest*7) {
		t.Errorf("sqs line = %v, want %v", inv.Line("sqs"), p.QSRequest*7)
	}
}

func TestStorageMonthly(t *testing.T) {
	p := Singapore2012()
	inv := p.StorageMonthly(40*GB, 100*GB, "dynamodb")
	if !approx(inv.Line("s3"), 40*p.STMonthGB) {
		t.Errorf("s3 storage = %v", inv.Line("s3"))
	}
	if !approx(inv.Line("dynamodb"), 100*p.IDXMonthGB) {
		t.Errorf("dynamodb storage = %v", inv.Line("dynamodb"))
	}
	inv = p.StorageMonthly(0, 10*GB, "simpledb")
	if !approx(inv.Line("simpledb"), 10*p.SDBMonthGB) {
		t.Errorf("simpledb storage = %v", inv.Line("simpledb"))
	}
	if _, ok := inv.Lines["s3"]; ok {
		t.Error("zero data bytes must not produce an s3 line")
	}
}

func TestInvoiceTotalAndAdd(t *testing.T) {
	a := Invoice{Lines: map[string]USD{"s3": 1, "ec2": 2}}
	b := Invoice{Lines: map[string]USD{"ec2": 3}}
	sum := a.Add(b)
	if !approx(sum.Total(), 6) {
		t.Errorf("total = %v, want 6", sum.Total())
	}
	if !approx(a.Total(), 3) {
		t.Errorf("a mutated by Add: total = %v", a.Total())
	}
}

func TestInvoiceString(t *testing.T) {
	inv := Invoice{Lines: map[string]USD{"s3": 0.5, "ec2": 0.25}}
	s := inv.String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "s3") {
		t.Errorf("String() = %q", s)
	}
	// Deterministic order: ec2 before s3.
	if strings.Index(s, "ec2") > strings.Index(s, "s3") {
		t.Errorf("lines not sorted: %q", s)
	}
}

func TestBillWholeWorkloadDecomposition(t *testing.T) {
	// Sanity check in the spirit of Figure 12: EC2 should dominate a
	// typical indexed query's cost when instance time is substantial.
	p := Singapore2012()
	l := meter.NewLedger()
	l.Record("dynamodb", "get", 40, 40, 1<<20)
	l.Record("s3", "get", 400, 400, 1<<30)
	l.AddInstanceSeconds("xl", 800)
	l.Record("sqs", "send", 60, 60, 1000)
	l.AddEgress(500 << 20)
	inv := p.Bill(l.Snapshot())
	if inv.Line("ec2") <= inv.Line("dynamodb") || inv.Line("ec2") <= inv.Line("s3") {
		t.Errorf("ec2 must dominate: %v", inv)
	}
}
