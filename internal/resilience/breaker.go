package resilience

import (
	"sync"
	"sync/atomic"
)

// BreakerState is one shard breaker's position in the classic three-state
// machine.
type BreakerState int

const (
	// BreakerClosed passes traffic and counts consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen sheds traffic for a fixed number of operations.
	BreakerOpen
	// BreakerHalfOpen lets one probe through; its outcome decides between
	// reclosing and reopening.
	BreakerHalfOpen
)

// String aids test failure messages.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerSet is one circuit breaker per scatter-mode shard. A shard whose
// operations fail FailThreshold times in a row opens: the next OpenOps
// operations against it are shed without touching the store (the scatter
// layer degrades to a partial result instead), after which the breaker goes
// half-open and admits a single probe. A successful probe recloses the
// breaker; a failed one reopens it for another OpenOps sheds.
//
// The machine advances on operation COUNT, not wall or modeled time, so its
// trajectory is a pure function of each shard's outcome sequence — that is
// what "vtime-deterministic" means here, and why chaos differential runs
// reproduce the exact open/half-open/shed tallies.
type BreakerSet struct {
	// FailThreshold is the consecutive-failure count that opens a shard's
	// breaker (default 5).
	FailThreshold int
	// OpenOps is how many operations an open breaker sheds before probing
	// (default 16).
	OpenOps int
	// Sink, when non-nil, receives the breaker counters. Set before sharing.
	Sink CounterSink

	mu sync.Mutex
	sh []breakerShard

	opens     atomic.Int64
	halfOpens atomic.Int64
	sheds     atomic.Int64
}

type breakerShard struct {
	state    BreakerState
	failures int  // consecutive failures while closed
	shedLeft int  // sheds remaining while open
	probing  bool // a half-open probe is in flight
}

// NewBreakerSet returns a breaker per shard with default policy.
func NewBreakerSet(shards int) *BreakerSet {
	if shards < 1 {
		shards = 1
	}
	return &BreakerSet{sh: make([]breakerShard, shards)}
}

func (b *BreakerSet) failThreshold() int {
	if b.FailThreshold <= 0 {
		return 5
	}
	return b.FailThreshold
}

func (b *BreakerSet) openOps() int {
	if b.OpenOps <= 0 {
		return 16
	}
	return b.OpenOps
}

func (b *BreakerSet) bump(c *atomic.Int64, metric string) {
	c.Add(1)
	if b.Sink != nil {
		b.Sink.Add(metric, 1)
	}
}

// Allow reports whether an operation against the shard may proceed. A false
// return means the operation is shed: the caller must not touch the store
// and should degrade to a partial result. Nil-safe (always allows).
func (b *BreakerSet) Allow(shard int) bool {
	if b == nil || shard < 0 || shard >= len(b.sh) {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.sh[shard]
	switch s.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		s.shedLeft--
		b.bump(&b.sheds, MetricBreakerShed)
		if s.shedLeft <= 0 {
			s.state = BreakerHalfOpen
			s.probing = false
			b.bump(&b.halfOpens, MetricBreakerHalfOpen)
		}
		return false
	case BreakerHalfOpen:
		if s.probing {
			// Only one probe at a time; concurrent callers are shed.
			b.bump(&b.sheds, MetricBreakerShed)
			return false
		}
		s.probing = true
		return true
	}
	return true
}

// Success records a successful operation on the shard.
func (b *BreakerSet) Success(shard int) {
	if b == nil || shard < 0 || shard >= len(b.sh) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.sh[shard]
	s.failures = 0
	if s.state == BreakerHalfOpen {
		s.state = BreakerClosed
		s.probing = false
	}
}

// Failure records a failed operation on the shard, advancing the machine.
func (b *BreakerSet) Failure(shard int) {
	if b == nil || shard < 0 || shard >= len(b.sh) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &b.sh[shard]
	switch s.state {
	case BreakerClosed:
		s.failures++
		if s.failures >= b.failThreshold() {
			s.state = BreakerOpen
			s.shedLeft = b.openOps()
			s.failures = 0
			b.bump(&b.opens, MetricBreakerOpen)
		}
	case BreakerHalfOpen:
		s.state = BreakerOpen
		s.shedLeft = b.openOps()
		s.probing = false
		b.bump(&b.opens, MetricBreakerOpen)
	}
}

// State returns the shard breaker's current state (closed on nil/bad index).
func (b *BreakerSet) State(shard int) BreakerState {
	if b == nil || shard < 0 || shard >= len(b.sh) {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sh[shard].state
}

// BreakerStats is a snapshot of a BreakerSet's counters.
type BreakerStats struct {
	// Opens counts closed/half-open → open transitions, HalfOpens the
	// open → half-open transitions, Sheds the operations rejected.
	Opens, HalfOpens, Sheds int64
}

// Stats returns a snapshot of the set's cumulative counters.
func (b *BreakerSet) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{}
	}
	return BreakerStats{Opens: b.opens.Load(), HalfOpens: b.halfOpens.Load(), Sheds: b.sheds.Load()}
}
