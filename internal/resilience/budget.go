package resilience

import (
	"context"
	"sync/atomic"
	"time"
)

// Budget is a per-query modeled-time deadline plus a shared retry-token
// pool. The query pipeline charges every modeled store duration it consumes
// against the budget; once the charges reach the deadline the remaining
// work is cut short with ErrDeadline. Retry tokens replace the per-call
// attempt cap of kv.Retry: every retry anywhere under the query draws from
// the same pool, so one flaky shard cannot multiply the query's worst-case
// latency by MaxAttempts at every call site.
//
// All methods are safe on a nil *Budget (no deadline, unlimited retries),
// so call sites need no guards. Charging is atomic; on strictly sequential
// paths the deadline cut is fully deterministic, and under concurrent
// fan-out it is deterministic up to the (modeled-time) interleaving of the
// charges — the differential tests pin concurrency where exactness matters.
type Budget struct {
	deadline time.Duration // modeled; 0 = no deadline
	spent    atomic.Int64  // nanoseconds charged so far
	retries  atomic.Int64  // tokens remaining; < 0 = unlimited
}

// NewBudget returns a budget with the given modeled deadline (0 = none)
// and retry-token pool (negative = unlimited).
func NewBudget(deadline time.Duration, retryTokens int) *Budget {
	b := &Budget{deadline: deadline}
	b.retries.Store(int64(retryTokens))
	return b
}

// Deadline returns the modeled deadline (0 when none, also on nil).
func (b *Budget) Deadline() time.Duration {
	if b == nil {
		return 0
	}
	return b.deadline
}

// Spent returns the modeled time charged so far.
func (b *Budget) Spent() time.Duration {
	if b == nil {
		return 0
	}
	return time.Duration(b.spent.Load())
}

// Charge records d of consumed modeled time.
func (b *Budget) Charge(d time.Duration) {
	if b == nil || d <= 0 {
		return
	}
	b.spent.Add(int64(d))
}

// Headroom returns the modeled time still available after accounting for
// pending (time consumed by the caller but not yet Charged). ok is false
// when no deadline is set — the caller must not cut work short then.
func (b *Budget) Headroom(pending time.Duration) (rem time.Duration, ok bool) {
	if b == nil || b.deadline <= 0 {
		return 0, false
	}
	rem = b.deadline - time.Duration(b.spent.Load()) - pending
	if rem < 0 {
		rem = 0
	}
	return rem, true
}

// Exhausted reports whether the deadline is already spent given pending
// uncharged time. Always false without a deadline.
func (b *Budget) Exhausted(pending time.Duration) bool {
	rem, ok := b.Headroom(pending)
	return ok && rem <= 0
}

// TakeRetry consumes one retry token, reporting false when the pool is
// empty. A nil budget or a negative pool is unlimited.
func (b *Budget) TakeRetry() bool {
	if b == nil {
		return true
	}
	for {
		n := b.retries.Load()
		if n < 0 {
			return true
		}
		if n == 0 {
			return false
		}
		if b.retries.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// RetriesLeft returns the remaining retry tokens (-1 for unlimited).
func (b *Budget) RetriesLeft() int {
	if b == nil {
		return -1
	}
	n := b.retries.Load()
	if n < 0 {
		return -1
	}
	return int(n)
}

type budgetKey struct{}

// NewContext returns a context carrying the budget. The query processor
// installs one per query; everything below retrieves it with FromContext.
func NewContext(ctx context.Context, b *Budget) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// FromContext returns the context's budget, or nil (a no-op budget) when
// absent. A nil context is treated as background.
func FromContext(ctx context.Context) *Budget {
	if ctx == nil {
		return nil
	}
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}
