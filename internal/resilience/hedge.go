package resilience

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Hedger decides when a scatter-mode shard read has straggled long enough
// that a second (hedged) request is worth issuing, Airphant-style: it keeps
// a bounded window of recently observed per-shard modeled latencies and
// derives the hedge delay as a configurable quantile over them. A shard
// call whose primary modeled latency exceeds Delay() fires a hedge — the
// operation is re-issued against the same shard and the caller keeps
// whichever response finishes first in modeled time (primary at d1, or
// hedge at delay+d2), cancelling the loser.
//
// Billing: both requests really hit the store, so both are metered and
// billed — hedging buys latency with money, never the reverse. The fired /
// won / wasted_bill counters make the trade visible: wasted_bill counts
// hedges that fired but lost the race, i.e. extra billed requests that
// bought nothing.
//
// Determinism: observations and decisions use modeled durations only. Each
// shard's ring is appended in that shard's (sequential) operation order,
// and Delay() is computed once per scatter call before the fan-out starts,
// so for a fixed seed the fired/won sequence is identical across runs.
type Hedger struct {
	// Quantile of the observed latency window used as the hedge delay
	// (default 0.9). Higher values hedge later and waste less money;
	// lower values cut the tail harder.
	Quantile float64
	// Window bounds the per-shard latency ring (default 64 samples).
	Window int
	// MinSamples is the total observation count required before hedging
	// arms (default 8); until then Delay reports ok=false.
	MinSamples int
	// Sink, when non-nil, receives the hedge counters. Set before sharing.
	Sink CounterSink

	mu    sync.Mutex
	rings [][]time.Duration // per-shard bounded sample windows
	next  []int             // per-shard ring write cursor
	total int               // observations ever recorded

	fired  atomic.Int64
	won    atomic.Int64
	wasted atomic.Int64
}

// NewHedger returns a hedger for n shards with default policy.
func NewHedger(n int) *Hedger {
	if n < 1 {
		n = 1
	}
	return &Hedger{rings: make([][]time.Duration, n), next: make([]int, n)}
}

func (h *Hedger) quantile() float64 {
	if h.Quantile <= 0 || h.Quantile >= 1 {
		return 0.9
	}
	return h.Quantile
}

func (h *Hedger) window() int {
	if h.Window <= 0 {
		return 64
	}
	return h.Window
}

func (h *Hedger) minSamples() int {
	if h.MinSamples <= 0 {
		return 8
	}
	return h.MinSamples
}

// Observe records one shard's primary modeled latency. Hedge latencies are
// never observed, so the window tracks the store's raw behaviour.
func (h *Hedger) Observe(shard int, d time.Duration) {
	if h == nil || shard < 0 || shard >= len(h.rings) || d <= 0 {
		return
	}
	h.mu.Lock()
	ring := h.rings[shard]
	if len(ring) < h.window() {
		h.rings[shard] = append(ring, d)
	} else {
		ring[h.next[shard]%len(ring)] = d
	}
	h.next[shard]++
	h.total++
	h.mu.Unlock()
}

// Delay returns the current hedge delay: the configured quantile of the
// union of the per-shard windows. ok is false until MinSamples observations
// exist — a cold hedger never fires. Callers compute it once per scatter
// call, before the fan-out, so every shard of one call sees the same delay.
func (h *Hedger) Delay() (delay time.Duration, ok bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total < h.minSamples() {
		return 0, false
	}
	var all []time.Duration
	for _, ring := range h.rings {
		all = append(all, ring...)
	}
	if len(all) == 0 {
		return 0, false
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	// Nearest-rank quantile over the sorted window.
	idx := int(h.quantile()*float64(len(all)-1) + 0.5)
	if idx >= len(all) {
		idx = len(all) - 1
	}
	return all[idx], true
}

func (h *Hedger) bump(c *atomic.Int64, metric string) {
	c.Add(1)
	if h.Sink != nil {
		h.Sink.Add(metric, 1)
	}
}

// NoteFired records that a hedge request was issued.
func (h *Hedger) NoteFired() {
	if h != nil {
		h.bump(&h.fired, MetricHedgeFired)
	}
}

// NoteWon records that a hedge finished before its primary.
func (h *Hedger) NoteWon() {
	if h != nil {
		h.bump(&h.won, MetricHedgeWon)
	}
}

// NoteWasted records a hedge that fired but lost the race: an extra billed
// request that bought no latency.
func (h *Hedger) NoteWasted() {
	if h != nil {
		h.bump(&h.wasted, MetricHedgeWasted)
	}
}

// HedgeStats is a snapshot of a Hedger's counters.
type HedgeStats struct {
	// Fired counts hedge requests issued; Won those that finished before
	// their primary; WastedBill those that fired and lost (pure overhead).
	Fired, Won, WastedBill int64
}

// Stats returns a snapshot of the hedger's cumulative counters.
func (h *Hedger) Stats() HedgeStats {
	if h == nil {
		return HedgeStats{}
	}
	return HedgeStats{Fired: h.fired.Load(), Won: h.won.Load(), WastedBill: h.wasted.Load()}
}
