// Package resilience provides the seeded, vtime-deterministic tail-latency
// primitives of the query read path: a per-query modeled-time Budget
// (deadline + shared retry tokens, carried in a context.Context), a
// single-flight Group that coalesces concurrent identical index reads, a
// Hedger that issues a second request against scatter-mode shard stragglers
// after a quantile-derived delay, and a per-shard circuit BreakerSet that
// sheds traffic to failing shards so a query degrades to a partial result
// instead of failing outright.
//
// Everything here operates on MODELED durations — the virtual latencies the
// cloud substrate returns — never on wall-clock time, and draws no
// randomness of its own: all timing variance enters through the seeded
// chaos layer and the stores' latency model. A primitive's behaviour is
// therefore a pure function of the (deterministic) sequence of modeled
// durations and outcomes it observes, which is what lets the differential
// tests demand byte-identical answers and bills across reruns.
package resilience

import (
	"context"
	"errors"
)

// CounterSink receives named counter increments (the obs Registry satisfies
// it; defining it here keeps resilience free of an obs dependency, the same
// pattern kv and chaos use).
type CounterSink interface {
	Add(name string, delta int64)
}

// Counter names streamed to the primitives' sinks.
const (
	MetricHedgeFired      = "resilience.hedge.fired"
	MetricHedgeWon        = "resilience.hedge.won"
	MetricHedgeWasted     = "resilience.hedge.wasted_bill"
	MetricCoalesceHits    = "resilience.coalesce.hits"
	MetricCoalesceLeaders = "resilience.coalesce.leaders"
	MetricBreakerOpen     = "resilience.breaker.open"
	MetricBreakerHalfOpen = "resilience.breaker.half_open"
	MetricBreakerShed     = "resilience.breaker.shed"
)

// deadlineError is the modeled-deadline failure. It matches
// context.DeadlineExceeded under errors.Is so callers can treat modeled and
// wall-clock deadlines uniformly.
type deadlineError struct{}

func (deadlineError) Error() string   { return "resilience: modeled query deadline exceeded" }
func (deadlineError) Timeout() bool   { return true }
func (deadlineError) Temporary() bool { return true }
func (deadlineError) Is(target error) bool {
	return target == context.DeadlineExceeded
}

// ErrDeadline reports that a query's modeled-time deadline was exhausted.
// errors.Is(err, context.DeadlineExceeded) is true for it.
var ErrDeadline error = deadlineError{}

// ErrRetryBudget reports that a query's shared retry budget was exhausted:
// some store operation failed transiently and no retry tokens remained.
var ErrRetryBudget = errors.New("resilience: query retry budget exhausted")
