package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// sinkMap is a test CounterSink.
type sinkMap struct {
	mu sync.Mutex
	m  map[string]int64
}

func newSink() *sinkMap { return &sinkMap{m: make(map[string]int64)} }

func (s *sinkMap) Add(name string, delta int64) {
	s.mu.Lock()
	s.m[name] += delta
	s.mu.Unlock()
}

func (s *sinkMap) get(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[name]
}

func TestBudgetDeadline(t *testing.T) {
	b := NewBudget(100*time.Millisecond, -1)
	if rem, ok := b.Headroom(0); !ok || rem != 100*time.Millisecond {
		t.Fatalf("fresh headroom = %v,%v", rem, ok)
	}
	b.Charge(40 * time.Millisecond)
	if rem, _ := b.Headroom(10 * time.Millisecond); rem != 50*time.Millisecond {
		t.Fatalf("headroom after charge+pending = %v", rem)
	}
	if b.Exhausted(0) {
		t.Fatal("not exhausted yet")
	}
	b.Charge(60 * time.Millisecond)
	if !b.Exhausted(0) {
		t.Fatal("should be exhausted")
	}
	if rem, ok := b.Headroom(0); !ok || rem != 0 {
		t.Fatalf("exhausted headroom = %v,%v (want 0,true)", rem, ok)
	}
}

func TestBudgetNoDeadline(t *testing.T) {
	b := NewBudget(0, -1)
	if _, ok := b.Headroom(0); ok {
		t.Fatal("no deadline must report ok=false")
	}
	if b.Exhausted(time.Hour) {
		t.Fatal("no deadline never exhausts")
	}
	var nilB *Budget
	if nilB.Exhausted(time.Hour) || !nilB.TakeRetry() || nilB.RetriesLeft() != -1 {
		t.Fatal("nil budget must be a no-op")
	}
	nilB.Charge(time.Hour) // must not panic
}

func TestBudgetRetryTokens(t *testing.T) {
	b := NewBudget(0, 2)
	if !b.TakeRetry() || !b.TakeRetry() {
		t.Fatal("two tokens should be takeable")
	}
	if b.TakeRetry() {
		t.Fatal("third take must fail")
	}
	if got := b.RetriesLeft(); got != 0 {
		t.Fatalf("RetriesLeft = %d, want 0", got)
	}
	unlimited := NewBudget(0, -1)
	for i := 0; i < 100; i++ {
		if !unlimited.TakeRetry() {
			t.Fatal("unlimited pool must always grant")
		}
	}
}

func TestBudgetContext(t *testing.T) {
	b := NewBudget(time.Second, 3)
	ctx := NewContext(context.Background(), b)
	if FromContext(ctx) != b {
		t.Fatal("round-trip failed")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("absent budget must be nil")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil-safety is the contract
		t.Fatal("nil ctx must yield nil budget")
	}
}

func TestDeadlineErrorMatchesContext(t *testing.T) {
	if !errors.Is(ErrDeadline, context.DeadlineExceeded) {
		t.Fatal("ErrDeadline must match context.DeadlineExceeded")
	}
	if errors.Is(ErrDeadline, context.Canceled) {
		t.Fatal("ErrDeadline must not match Canceled")
	}
}

func TestGroupCoalesces(t *testing.T) {
	g := NewGroup()
	sink := newSink()
	g.Sink = sink

	const waiters = 8
	started := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex

	fn := func() (any, time.Duration, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		close(started)
		<-release
		return "payload", 7 * time.Millisecond, nil
	}

	var wg sync.WaitGroup
	vals := make([]any, waiters)
	durs := make([]time.Duration, waiters)
	lead := make([]bool, waiters)

	// The leader enters first and blocks inside fn; followers then attach
	// to its in-flight call. A follower's fn failing the test proves none
	// of them ever executed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		vals[0], durs[0], lead[0], _ = g.Do("k", fn)
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], durs[i], lead[i], _ = g.Do("k", func() (any, time.Duration, error) {
				t.Error("follower executed fn")
				return nil, 0, nil
			})
		}(i)
	}
	// Wait until every follower is attached to the in-flight call (the
	// hold count is observable under the group mutex), then release.
	for {
		g.mu.Lock()
		c := g.m["k"]
		attached := c != nil && c.waiters == waiters-1
		g.mu.Unlock()
		if attached {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	leaders := 0
	for i := 0; i < waiters; i++ {
		if vals[i] != "payload" || durs[i] != 7*time.Millisecond {
			t.Fatalf("waiter %d got (%v, %v)", i, vals[i], durs[i])
		}
		if lead[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d leaders, want 1", leaders)
	}
	st := g.Stats()
	if st.Leaders != 1 || st.Hits != waiters-1 {
		t.Fatalf("stats = %+v", st)
	}
	if sink.get(MetricCoalesceLeaders) != 1 || sink.get(MetricCoalesceHits) != int64(waiters-1) {
		t.Fatalf("sink counters wrong: %v", sink.m)
	}
}

func TestGroupSequentialCallsDoNotCoalesce(t *testing.T) {
	g := NewGroup()
	calls := 0
	for i := 0; i < 3; i++ {
		_, _, leader, _ := g.Do("k", func() (any, time.Duration, error) {
			calls++
			return nil, 0, nil
		})
		if !leader {
			t.Fatal("non-overlapping call must lead")
		}
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3 (no caching)", calls)
	}
}

func TestGroupNil(t *testing.T) {
	var g *Group
	v, d, leader, err := g.Do("k", func() (any, time.Duration, error) {
		return 42, time.Millisecond, nil
	})
	if v != 42 || d != time.Millisecond || !leader || err != nil {
		t.Fatalf("nil group passthrough got (%v,%v,%v,%v)", v, d, leader, err)
	}
}

func TestHedgerDelayQuantile(t *testing.T) {
	h := NewHedger(2)
	h.MinSamples = 4
	if _, ok := h.Delay(); ok {
		t.Fatal("cold hedger must not arm")
	}
	// 10 samples 1ms..10ms across two shards; 0.9 quantile (nearest rank
	// over sorted window, idx = round(0.9*9) = 8) = 9ms.
	for i := 1; i <= 10; i++ {
		h.Observe(i%2, time.Duration(i)*time.Millisecond)
	}
	d, ok := h.Delay()
	if !ok || d != 9*time.Millisecond {
		t.Fatalf("Delay = %v,%v want 9ms,true", d, ok)
	}
	// Determinism: same observations, same delay.
	h2 := NewHedger(2)
	h2.MinSamples = 4
	for i := 1; i <= 10; i++ {
		h2.Observe(i%2, time.Duration(i)*time.Millisecond)
	}
	if d2, _ := h2.Delay(); d2 != d {
		t.Fatalf("delay not deterministic: %v vs %v", d2, d)
	}
}

func TestHedgerWindowBounded(t *testing.T) {
	h := NewHedger(1)
	h.Window = 4
	for i := 0; i < 100; i++ {
		h.Observe(0, time.Duration(i+1)*time.Millisecond)
	}
	if n := len(h.rings[0]); n != 4 {
		t.Fatalf("ring grew to %d, want 4", n)
	}
}

func TestHedgerCounters(t *testing.T) {
	h := NewHedger(1)
	sink := newSink()
	h.Sink = sink
	h.NoteFired()
	h.NoteFired()
	h.NoteWon()
	h.NoteWasted()
	st := h.Stats()
	if st.Fired != 2 || st.Won != 1 || st.WastedBill != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if sink.get(MetricHedgeFired) != 2 || sink.get(MetricHedgeWon) != 1 || sink.get(MetricHedgeWasted) != 1 {
		t.Fatalf("sink = %v", sink.m)
	}
}

func TestBreakerTransitions(t *testing.T) {
	b := NewBreakerSet(2)
	b.FailThreshold = 3
	b.OpenOps = 2
	sink := newSink()
	b.Sink = sink

	// Closed: failures below threshold keep passing.
	for i := 0; i < 2; i++ {
		if !b.Allow(0) {
			t.Fatal("closed breaker must allow")
		}
		b.Failure(0)
	}
	if b.State(0) != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State(0))
	}
	// A success resets the consecutive-failure count.
	b.Success(0)
	b.Failure(0)
	b.Failure(0)
	if b.State(0) != BreakerClosed {
		t.Fatal("reset failure count should keep breaker closed")
	}
	// Third consecutive failure opens.
	b.Failure(0)
	if b.State(0) != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State(0))
	}
	// Open sheds OpenOps operations, then goes half-open.
	if b.Allow(0) {
		t.Fatal("open breaker must shed")
	}
	if b.State(0) != BreakerOpen {
		t.Fatal("one shed left")
	}
	if b.Allow(0) {
		t.Fatal("second shed")
	}
	if b.State(0) != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State(0))
	}
	// Half-open admits exactly one probe.
	if !b.Allow(0) {
		t.Fatal("half-open must admit a probe")
	}
	if b.Allow(0) {
		t.Fatal("second concurrent probe must be shed")
	}
	// Probe failure reopens.
	b.Failure(0)
	if b.State(0) != BreakerOpen {
		t.Fatalf("state = %v, want open after failed probe", b.State(0))
	}
	b.Allow(0)
	b.Allow(0) // back to half-open
	if !b.Allow(0) {
		t.Fatal("probe after reopen")
	}
	// Probe success recloses.
	b.Success(0)
	if b.State(0) != BreakerClosed {
		t.Fatalf("state = %v, want closed after probe success", b.State(0))
	}
	if !b.Allow(0) {
		t.Fatal("reclosed breaker must allow")
	}

	// Shard 1 was never touched.
	if b.State(1) != BreakerClosed || !b.Allow(1) {
		t.Fatal("independent shard affected")
	}

	st := b.Stats()
	if st.Opens != 2 || st.HalfOpens != 2 || st.Sheds != 5 {
		t.Fatalf("stats = %+v, want {2 2 5}", st)
	}
	if sink.get(MetricBreakerOpen) != 2 || sink.get(MetricBreakerHalfOpen) != 2 || sink.get(MetricBreakerShed) != 5 {
		t.Fatalf("sink = %v", sink.m)
	}
}

func TestBreakerNil(t *testing.T) {
	var b *BreakerSet
	if !b.Allow(0) || b.State(0) != BreakerClosed {
		t.Fatal("nil breaker must pass everything")
	}
	b.Success(0)
	b.Failure(0) // must not panic
}
