package resilience

import (
	"sync"
	"sync/atomic"
	"time"
)

// Group coalesces concurrent identical work: when several goroutines Do the
// same key at once, one of them (the leader) runs the function and every
// other (the followers) blocks until the leader finishes, then shares the
// leader's value, modeled duration, and error. The index layer keys chunks
// of posting reads by (table, kind, keys) so a cache-fill stampede — N
// queries missing on the same hot posting simultaneously — issues ONE
// billed store request instead of N, and every waiter receives the leader's
// parsed blocked structure.
//
// Calls that do not overlap in wall time never coalesce (the key is
// forgotten as soon as the leader finishes), so coalescing only removes
// duplicate in-flight requests; it is not a cache.
type Group struct {
	// Sink, when non-nil, receives the coalesce counters
	// (MetricCoalesceHits / MetricCoalesceLeaders). Set before sharing.
	Sink CounterSink

	mu sync.Mutex
	m  map[string]*flightCall

	hits    atomic.Int64
	leaders atomic.Int64
}

type flightCall struct {
	wg      sync.WaitGroup
	waiters int // followers attached; guarded by Group.mu
	val     any
	dur     time.Duration
	err     error
}

// NewGroup returns an empty group.
func NewGroup() *Group { return &Group{} }

// GroupStats is a snapshot of a Group's counters.
type GroupStats struct {
	// Hits counts follower calls that shared a leader's in-flight result.
	Hits int64
	// Leaders counts calls that actually executed the function.
	Leaders int64
}

// Stats returns a snapshot of the group's cumulative counters.
func (g *Group) Stats() GroupStats {
	return GroupStats{Hits: g.hits.Load(), Leaders: g.leaders.Load()}
}

// Waiting reports how many followers are currently blocked on key's
// in-flight call (0 when none is in flight). Tests use it to release a
// gated leader only once its followers have attached, making coalescing
// assertions deterministic.
func (g *Group) Waiting(key string) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if c, ok := g.m[key]; ok {
		return c.waiters
	}
	return 0
}

func (g *Group) bump(c *atomic.Int64, metric string) {
	c.Add(1)
	if g.Sink != nil {
		g.Sink.Add(metric, 1)
	}
}

// Do runs fn under key, coalescing with any identical in-flight call.
// It returns fn's value, its modeled duration, whether THIS call was the
// leader (the one that executed fn and should be billed), and fn's error.
// A nil *Group executes fn directly as a leader.
func (g *Group) Do(key string, fn func() (any, time.Duration, error)) (v any, d time.Duration, leader bool, err error) {
	if g == nil {
		v, d, err = fn()
		return v, d, true, err
	}
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		c.waiters++
		g.mu.Unlock()
		c.wg.Wait()
		g.bump(&g.hits, MetricCoalesceHits)
		return c.val, c.dur, false, c.err
	}
	c := new(flightCall)
	c.wg.Add(1)
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.dur, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	g.bump(&g.leaders, MetricCoalesceLeaders)
	return c.val, c.dur, true, c.err
}
