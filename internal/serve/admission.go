// Package serve implements the query-serving daemon: an HTTP/JSON API over
// the warehouse's frontend/processor pipeline with an admission-control
// layer in front of a bounded scheduler pool.
//
// The admission pipeline of one request:
//
//	POST /query -> per-tenant quota (token-bucket QPS + in-flight cap)
//	            -> bounded FIFO queue (shed with 429 + Retry-After when full)
//	            -> scheduler pool (Limits.Workers goroutines)
//	            -> Backend.Do (live query processors via core.Frontend)
//	            -> JSON response
//
// Shedding is always explicit: a rejected request gets a 429 (503 while
// draining) with a machine-readable reason and a Retry-After hint, and is
// counted in the serve.* metrics — requests are never dropped silently.
package serve

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Limits bounds what the admission layer lets through to the scheduler.
type Limits struct {
	// Workers is the scheduler pool size — how many admitted queries run
	// concurrently. 0 selects runtime.NumCPU().
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// beyond the ones running; an arrival beyond it is shed with 429.
	// 0 selects 4x Workers.
	QueueDepth int

	// TenantQPS is the sustained per-tenant admission rate: each tenant
	// owns a token bucket refilled at this rate, and a request needs one
	// token. 0 disables rate quotas.
	TenantQPS float64
	// TenantBurst is the bucket capacity (how far a tenant may burst above
	// the sustained rate). 0 selects ceil(2*TenantQPS), at least 1.
	TenantBurst int
	// TenantInflight caps how many of one tenant's requests may be
	// admitted-but-unfinished at once, so a single tenant can never occupy
	// the whole pool plus queue. 0 disables in-flight quotas.
	TenantInflight int
}

func (l Limits) withDefaults() Limits {
	if l.Workers <= 0 {
		l.Workers = runtime.NumCPU()
	}
	if l.QueueDepth <= 0 {
		l.QueueDepth = 4 * l.Workers
	}
	if l.TenantQPS > 0 && l.TenantBurst <= 0 {
		l.TenantBurst = int(2*l.TenantQPS + 0.999)
		if l.TenantBurst < 1 {
			l.TenantBurst = 1
		}
	}
	return l
}

// Reject reasons, as reported in 429 bodies and counted by metrics.
const (
	ReasonQueueFull     = "queue_full"
	ReasonQuotaRate     = "quota_rate"
	ReasonQuotaInflight = "quota_inflight"
	ReasonDraining      = "draining"
)

// Rejection is a shed admission attempt.
type Rejection struct {
	Reason     string
	Tenant     string
	RetryAfter time.Duration
}

// Error makes a Rejection usable as an error.
func (r *Rejection) Error() string {
	return fmt.Sprintf("serve: %s rejected (%s), retry after %s", r.Tenant, r.Reason, r.RetryAfter)
}

// tenantBucket is one tenant's quota state.
type tenantBucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

// Admission applies the per-tenant quotas. The queue bound itself is
// enforced by the server's bounded channel; Admit/Refund bracket the
// enqueue attempt so a queue-full shed returns the tenant's token.
type Admission struct {
	limits Limits
	now    func() time.Time

	mu       sync.Mutex
	tenants  map[string]*tenantBucket
	inflight int
}

// NewAdmission builds the quota layer. now is the clock (nil selects
// time.Now; tests inject a fake for deterministic refill).
func NewAdmission(limits Limits, now func() time.Time) *Admission {
	if now == nil {
		now = time.Now
	}
	return &Admission{limits: limits.withDefaults(), now: now, tenants: make(map[string]*tenantBucket)}
}

// Limits returns the effective (default-resolved) limits.
func (a *Admission) Limits() Limits { return a.limits }

func (a *Admission) bucket(tenant string) *tenantBucket {
	tb := a.tenants[tenant]
	if tb == nil {
		tb = &tenantBucket{tokens: float64(a.limits.TenantBurst), last: a.now()}
		a.tenants[tenant] = tb
	}
	return tb
}

// Admit accounts one request for the tenant, or explains why it is shed.
// Every successful Admit must be paired with exactly one Release (after
// the query finishes) or Refund (if it was never enqueued).
func (a *Admission) Admit(tenant string) *Rejection {
	a.mu.Lock()
	defer a.mu.Unlock()
	tb := a.bucket(tenant)
	if a.limits.TenantInflight > 0 && tb.inflight >= a.limits.TenantInflight {
		return &Rejection{Reason: ReasonQuotaInflight, Tenant: tenant, RetryAfter: time.Second}
	}
	if a.limits.TenantQPS > 0 {
		now := a.now()
		tb.tokens += now.Sub(tb.last).Seconds() * a.limits.TenantQPS
		if cap := float64(a.limits.TenantBurst); tb.tokens > cap {
			tb.tokens = cap
		}
		tb.last = now
		if tb.tokens < 1 {
			wait := time.Duration((1 - tb.tokens) / a.limits.TenantQPS * float64(time.Second))
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			return &Rejection{Reason: ReasonQuotaRate, Tenant: tenant, RetryAfter: wait}
		}
		tb.tokens--
	}
	tb.inflight++
	a.inflight++
	return nil
}

// Release ends one admitted request (it ran, successfully or not).
func (a *Admission) Release(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tb := a.tenants[tenant]; tb != nil && tb.inflight > 0 {
		tb.inflight--
		a.inflight--
	}
}

// Refund undoes an Admit whose request never reached the queue: the
// in-flight slot is released and the rate token handed back (a queue-full
// shed should not also burn the tenant's quota).
func (a *Admission) Refund(tenant string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	tb := a.tenants[tenant]
	if tb == nil {
		return
	}
	if tb.inflight > 0 {
		tb.inflight--
		a.inflight--
	}
	if a.limits.TenantQPS > 0 {
		tb.tokens++
		if cap := float64(a.limits.TenantBurst); tb.tokens > cap {
			tb.tokens = cap
		}
	}
}

// Inflight reports the admitted-but-unfinished request count across all
// tenants.
func (a *Admission) Inflight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inflight
}

// TenantInflight reports one tenant's admitted-but-unfinished count.
func (a *Admission) TenantInflight(tenant string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if tb := a.tenants[tenant]; tb != nil {
		return tb.inflight
	}
	return 0
}
