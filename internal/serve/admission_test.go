package serve

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced admission clock.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestAdmissionRateQuota(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(Limits{Workers: 1, TenantQPS: 2, TenantBurst: 2}, clk.now)

	for i := 0; i < 2; i++ {
		if rej := a.Admit("acme"); rej != nil {
			t.Fatalf("burst admit %d rejected: %v", i, rej)
		}
	}
	rej := a.Admit("acme")
	if rej == nil || rej.Reason != ReasonQuotaRate {
		t.Fatalf("third admit = %v, want quota_rate rejection", rej)
	}
	if rej.RetryAfter <= 0 || rej.RetryAfter > time.Second {
		t.Errorf("RetryAfter = %s, want (0, 1s] at 2 QPS", rej.RetryAfter)
	}

	// Refill: one second at 2 QPS buys two more admits.
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if rej := a.Admit("acme"); rej != nil {
			t.Fatalf("post-refill admit %d rejected: %v", i, rej)
		}
	}
	if rej := a.Admit("acme"); rej == nil {
		t.Fatal("bucket should be empty again")
	}

	// Another tenant has its own bucket.
	if rej := a.Admit("globex"); rej != nil {
		t.Fatalf("fresh tenant rejected: %v", rej)
	}
}

func TestAdmissionInflightQuota(t *testing.T) {
	a := NewAdmission(Limits{Workers: 4, TenantInflight: 2}, nil)
	if rej := a.Admit("acme"); rej != nil {
		t.Fatal(rej)
	}
	if rej := a.Admit("acme"); rej != nil {
		t.Fatal(rej)
	}
	rej := a.Admit("acme")
	if rej == nil || rej.Reason != ReasonQuotaInflight {
		t.Fatalf("third concurrent admit = %v, want quota_inflight", rej)
	}
	// Tenant isolation: acme saturating its share leaves globex untouched.
	if rej := a.Admit("globex"); rej != nil {
		t.Fatalf("other tenant rejected while acme saturated: %v", rej)
	}
	a.Release("acme")
	if rej := a.Admit("acme"); rej != nil {
		t.Fatalf("admit after release rejected: %v", rej)
	}
	if got := a.TenantInflight("acme"); got != 2 {
		t.Errorf("acme inflight = %d, want 2", got)
	}
	if got := a.Inflight(); got != 3 {
		t.Errorf("total inflight = %d, want 3", got)
	}
}

func TestAdmissionRefundReturnsToken(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	a := NewAdmission(Limits{Workers: 1, TenantQPS: 1, TenantBurst: 1}, clk.now)
	if rej := a.Admit("acme"); rej != nil {
		t.Fatal(rej)
	}
	// Without a refund the bucket is empty; a refund restores the token and
	// clears the inflight slot, so the tenant is not double-charged for a
	// queue-full shed.
	a.Refund("acme")
	if got := a.Inflight(); got != 0 {
		t.Fatalf("inflight after refund = %d, want 0", got)
	}
	if rej := a.Admit("acme"); rej != nil {
		t.Fatalf("admit after refund rejected: %v", rej)
	}
}

func TestLimitsDefaults(t *testing.T) {
	l := Limits{TenantQPS: 3}.withDefaults()
	if l.Workers < 1 {
		t.Errorf("Workers = %d, want >= 1", l.Workers)
	}
	if l.QueueDepth != 4*l.Workers {
		t.Errorf("QueueDepth = %d, want %d", l.QueueDepth, 4*l.Workers)
	}
	if l.TenantBurst != 6 {
		t.Errorf("TenantBurst = %d, want ceil(2*3) = 6", l.TenantBurst)
	}
}
