package serve

import (
	"fmt"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
)

// Backend executes one admitted query to completion. The production
// implementation is WarehouseBackend; tests substitute fakes to make
// queueing and shedding deterministic.
type Backend interface {
	// Do runs the query and returns its outcome. A non-nil error means the
	// serving machinery failed (timeout, closed backend); a query-level
	// failure travels inside QueryOutcome.Err.
	Do(queryText string, useIndex bool, timeout time.Duration) (*core.QueryOutcome, error)
	// Close drains the backend: processors finish their current work, then
	// stop.
	Close() error
}

// WarehouseBackend serves queries over a live processor fleet: n query
// processors polling the warehouse queues (step 9 of Figure 1), plus one
// core.Frontend dispatching responses back to callers by query ID.
type WarehouseBackend struct {
	w        *core.Warehouse
	frontend *core.Frontend
	workers  []*core.Worker
}

// NewWarehouseBackend launches n query processors on fresh instances of the
// given type and starts the response dispatcher. The warehouse must already
// be loaded (and indexed, if queries will use the index).
func NewWarehouseBackend(w *core.Warehouse, n int, typ ec2.InstanceType, opts core.WorkerOptions) *WarehouseBackend {
	if n < 1 {
		n = 1
	}
	b := &WarehouseBackend{w: w, frontend: core.NewFrontend(w)}
	for i := 0; i < n; i++ {
		b.workers = append(b.workers, w.StartQueryProcessor(ec2.Launch(w.Ledger(), typ), opts))
	}
	return b
}

// Do submits the query and waits up to timeout for its routed response.
func (b *WarehouseBackend) Do(queryText string, useIndex bool, timeout time.Duration) (*core.QueryOutcome, error) {
	return b.frontend.Do(queryText, useIndex, timeout)
}

// Workers reports the processor count.
func (b *WarehouseBackend) Workers() int { return len(b.workers) }

// Close stops the processors (each finishes its in-flight query) and then
// the dispatcher.
func (b *WarehouseBackend) Close() error {
	for _, wk := range b.workers {
		wk.Stop()
	}
	b.frontend.Close()
	return nil
}

// Warehouse exposes the underlying warehouse (for billing snapshots).
func (b *WarehouseBackend) Warehouse() *core.Warehouse { return b.w }

var _ Backend = (*WarehouseBackend)(nil)

// errBackendClosed is returned by backends that refuse work after Close.
var errBackendClosed = fmt.Errorf("serve: backend closed")
