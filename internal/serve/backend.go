package serve

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
)

// Backend executes one admitted query to completion. The production
// implementation is WarehouseBackend; tests substitute fakes to make
// queueing and shedding deterministic.
type Backend interface {
	// Do runs the query and returns its outcome. A non-nil error means the
	// serving machinery failed (timeout, closed backend); a query-level
	// failure travels inside QueryOutcome.Err.
	Do(queryText string, useIndex bool, timeout time.Duration) (*core.QueryOutcome, error)
	// Close drains the backend: processors finish their current work, then
	// stop.
	Close() error
}

// WriteBackend is the optional mutation surface of a Backend: a backend
// implementing it accepts document updates and removals alongside queries.
// The server mounts /document only when the backend both implements the
// interface and reports Writable.
type WriteBackend interface {
	// Writable reports whether mutations are accepted (for the warehouse
	// backend: whether the warehouse runs a mutable corpus).
	Writable() bool
	// Update atomically replaces one document's content and index
	// contribution.
	Update(uri string, data []byte) error
	// Remove deletes one document and supersedes its index contribution.
	Remove(uri string) error
}

// WarehouseBackend serves queries over a live processor fleet: n query
// processors polling the warehouse queues (step 9 of Figure 1), plus one
// core.Frontend dispatching responses back to callers by query ID. When the
// warehouse runs a mutable corpus the backend also accepts writes, executed
// on a dedicated instance: queries in flight keep their pinned snapshot, so
// writes never change an answer mid-query.
type WarehouseBackend struct {
	w        *core.Warehouse
	frontend *core.Frontend
	workers  []*core.Worker

	writeMu sync.Mutex // serializes mutations on the write instance
	writeIn *ec2.Instance
}

// NewWarehouseBackend launches n query processors on fresh instances of the
// given type and starts the response dispatcher. The warehouse must already
// be loaded (and indexed, if queries will use the index).
func NewWarehouseBackend(w *core.Warehouse, n int, typ ec2.InstanceType, opts core.WorkerOptions) *WarehouseBackend {
	if n < 1 {
		n = 1
	}
	b := &WarehouseBackend{w: w, frontend: core.NewFrontend(w)}
	for i := 0; i < n; i++ {
		b.workers = append(b.workers, w.StartQueryProcessor(ec2.Launch(w.Ledger(), typ), opts))
	}
	if w.Corpus() != nil {
		b.writeIn = ec2.Launch(w.Ledger(), typ)
	}
	return b
}

// Writable implements WriteBackend: true when the warehouse runs a mutable
// corpus.
func (b *WarehouseBackend) Writable() bool { return b.writeIn != nil }

// Update implements WriteBackend over core.Warehouse.UpdateDocument.
func (b *WarehouseBackend) Update(uri string, data []byte) error {
	if b.writeIn == nil {
		return fmt.Errorf("serve: warehouse corpus is immutable")
	}
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	return b.w.UpdateDocument(b.writeIn, uri, data)
}

// Remove implements WriteBackend over core.Warehouse.RemoveDocument.
func (b *WarehouseBackend) Remove(uri string) error {
	if b.writeIn == nil {
		return fmt.Errorf("serve: warehouse corpus is immutable")
	}
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	return b.w.RemoveDocument(b.writeIn, uri)
}

// WriteHours reports the write instance's modeled busy time in hours —
// the VM share of the mutation cost. Zero for immutable warehouses.
func (b *WarehouseBackend) WriteHours() float64 {
	if b.writeIn == nil {
		return 0
	}
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	return b.writeIn.Elapsed().Hours()
}

// Do submits the query and waits up to timeout for its routed response.
func (b *WarehouseBackend) Do(queryText string, useIndex bool, timeout time.Duration) (*core.QueryOutcome, error) {
	return b.frontend.Do(queryText, useIndex, timeout)
}

// Workers reports the processor count.
func (b *WarehouseBackend) Workers() int { return len(b.workers) }

// Close stops the processors (each finishes its in-flight query) and then
// the dispatcher.
func (b *WarehouseBackend) Close() error {
	for _, wk := range b.workers {
		wk.Stop()
	}
	b.frontend.Close()
	return nil
}

// Warehouse exposes the underlying warehouse (for billing snapshots).
func (b *WarehouseBackend) Warehouse() *core.Warehouse { return b.w }

var (
	_ Backend      = (*WarehouseBackend)(nil)
	_ WriteBackend = (*WarehouseBackend)(nil)
)

// errBackendClosed is returned by backends that refuse work after Close.
var errBackendClosed = fmt.Errorf("serve: backend closed")
