package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// This file is the load harness: a seeded closed-loop (or rate-paced
// open-loop) generator that drives a running daemon over HTTP and reduces
// the run to the serving numbers the paper's cost story needs — latency
// percentiles, saturation throughput, shed rates, and $/1M-queries from
// the metered billing delta.

// LoadOptions configures one load run.
type LoadOptions struct {
	// BaseURL of the daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Queries is the candidate set; the mix draws from it.
	Queries []workload.Query
	// Dist is workload.DistUniform or workload.DistZipf.
	Dist string
	// ZipfS is the Zipf exponent (0 selects workload.DefaultZipfS).
	ZipfS float64
	// Seed makes the request sequence deterministic.
	Seed int64
	// Requests is the total offered request count.
	Requests int
	// Concurrency is the closed-loop worker count (in-flight cap).
	Concurrency int
	// RateQPS, when positive, paces arrivals open-loop at this rate instead
	// of issuing as fast as the Concurrency workers complete.
	RateQPS float64
	// Tenants are assigned round-robin across requests; empty means all
	// requests run as the default tenant.
	Tenants []string
	// UseIndex is forwarded to every query.
	UseIndex bool
	// Timeout bounds one HTTP request; 0 selects DefaultQueryTimeout.
	Timeout time.Duration
	// WriteEvery, when positive, turns every Nth request of the offered
	// sequence into a document write (PUT /document) instead of a query,
	// making the run a mixed read/write workload. Requires WriteDocs.
	WriteEvery int
	// WriteDocs is the document pool the write stream rewrites round-robin;
	// each update revision-stamps the content so every write changes the
	// index. The URIs should match documents the daemon has loaded.
	WriteDocs []WriteDoc
	// RemoveEvery, when positive, makes every Nth write a DELETE instead of
	// an update; the removed document is re-inserted by its next
	// round-robin update.
	RemoveEvery int
}

// WriteDoc is one document of the write pool.
type WriteDoc struct {
	URI  string
	Data []byte
}

// LoadReport is the reduced outcome of a load run.
type LoadReport struct {
	Offered       int           `json:"offered"`
	Completed     int           `json:"completed"`
	ShedQueueFull int           `json:"shedQueueFull"`
	ShedQuota     int           `json:"shedQuota"`
	Errors        int           `json:"errors"`
	Rows          int           `json:"rows"`
	Updates       int           `json:"updates,omitempty"`
	Removes       int           `json:"removes,omitempty"`
	P50           time.Duration `json:"p50"`
	P95           time.Duration `json:"p95"`
	P99           time.Duration `json:"p99"`
	Max           time.Duration `json:"max"`
	WriteP95      time.Duration `json:"writeP95,omitempty"`
	Wall          time.Duration `json:"wall"`
	ThroughputQPS float64       `json:"throughputQPS"`
	CostUSD       float64       `json:"costUSD"`
	CostPer1M     float64       `json:"costPer1M"`
}

// ShedRate is the fraction of offered requests shed by admission control.
func (r *LoadReport) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.ShedQueueFull+r.ShedQuota) / float64(r.Offered)
}

// String renders the report as one summary block.
func (r *LoadReport) String() string {
	s := fmt.Sprintf(
		"offered %d  completed %d  shed %d (queue %d, quota %d)  errors %d  rows %d\n"+
			"latency p50 %s  p95 %s  p99 %s  max %s\n"+
			"wall %s  throughput %.1f q/s  shed rate %.1f%%  cost $%.6f  $/1M %.2f",
		r.Offered, r.Completed, r.ShedQueueFull+r.ShedQuota, r.ShedQueueFull, r.ShedQuota,
		r.Errors, r.Rows, r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
		r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
		r.Wall.Round(time.Millisecond), r.ThroughputQPS, 100*r.ShedRate(), r.CostUSD, r.CostPer1M)
	if r.Updates+r.Removes > 0 {
		s += fmt.Sprintf("\nwrites: %d updates  %d removes  p95 %s",
			r.Updates, r.Removes, r.WriteP95.Round(time.Microsecond))
	}
	return s
}

// loadJob is one pre-generated request of the deterministic sequence:
// either a query or (in mixed runs) a document write.
type loadJob struct {
	query  workload.Query
	tenant string
	write  bool
	remove bool
	uri    string
	data   []byte
}

// RunLoad drives one load run against a daemon and reduces it to a report.
// The request sequence (query choice and tenant assignment) is fully
// determined by the options, so the same options replay the same offered
// load.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	if opts.Requests <= 0 {
		return nil, fmt.Errorf("serve: load run needs Requests > 0")
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultQueryTimeout
	}
	if opts.Dist == "" {
		opts.Dist = workload.DistUniform
	}
	mix, err := workload.NewMix(opts.Queries, opts.Dist, opts.Seed, opts.ZipfS)
	if err != nil {
		return nil, err
	}
	if opts.WriteEvery > 0 && len(opts.WriteDocs) == 0 {
		return nil, fmt.Errorf("serve: WriteEvery needs a WriteDocs pool")
	}
	jobs := make([]loadJob, opts.Requests)
	writes := 0
	for i := range jobs {
		if opts.WriteEvery > 0 && (i+1)%opts.WriteEvery == 0 {
			writes++
			d := opts.WriteDocs[(writes-1)%len(opts.WriteDocs)]
			jobs[i].write = true
			jobs[i].uri = d.URI
			if opts.RemoveEvery > 0 && writes%opts.RemoveEvery == 0 {
				jobs[i].remove = true
			} else {
				jobs[i].data = stampRevision(d.Data, writes)
			}
		} else {
			jobs[i].query = mix.Next()
		}
		if len(opts.Tenants) > 0 {
			jobs[i].tenant = opts.Tenants[i%len(opts.Tenants)]
		}
	}

	client := &http.Client{Timeout: opts.Timeout}
	costBefore, haveBilling := fetchBillingTotal(client, opts.BaseURL)

	// Feed jobs either as fast as workers drain them (closed loop) or at
	// the configured arrival rate (open loop). In the open loop the channel
	// is buffered so a stalled server queues arrivals at the generator
	// rather than pausing the arrival process.
	feed := make(chan loadJob, opts.Requests)
	go func() {
		defer close(feed)
		var interval time.Duration
		if opts.RateQPS > 0 {
			interval = time.Duration(float64(time.Second) / opts.RateQPS)
		}
		for _, j := range jobs {
			feed <- j
			if interval > 0 {
				time.Sleep(interval)
			}
		}
	}()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		writeLats []time.Duration
		rep       = &LoadReport{Offered: opts.Requests}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range feed {
				if job.write {
					lat, outcome := doWrite(client, opts.BaseURL, job)
					mu.Lock()
					if outcome == outcomeOK {
						rep.Completed++
						if job.remove {
							rep.Removes++
						} else {
							rep.Updates++
						}
						writeLats = append(writeLats, lat)
					} else {
						rep.Errors++
					}
					mu.Unlock()
					continue
				}
				lat, rows, outcome := doOne(client, opts.BaseURL, job, opts.UseIndex)
				mu.Lock()
				switch outcome {
				case outcomeOK:
					rep.Completed++
					rep.Rows += rows
					latencies = append(latencies, lat)
				case outcomeShedQueue:
					rep.ShedQueueFull++
				case outcomeShedQuota:
					rep.ShedQuota++
				default:
					rep.Errors++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	rep.Wall = time.Since(start)
	if rep.Wall > 0 {
		rep.ThroughputQPS = float64(rep.Completed) / rep.Wall.Seconds()
	}
	rep.P50, rep.P95, rep.P99, rep.Max = percentiles(latencies)
	_, rep.WriteP95, _, _ = percentiles(writeLats)
	if haveBilling {
		if costAfter, ok := fetchBillingTotal(client, opts.BaseURL); ok && rep.Completed > 0 {
			rep.CostUSD = costAfter - costBefore
			rep.CostPer1M = rep.CostUSD / float64(rep.Completed) * 1e6
		}
	}
	return rep, nil
}

const (
	outcomeOK = iota
	outcomeShedQueue
	outcomeShedQuota
	outcomeError
)

// doOne issues one query request and classifies its outcome.
func doOne(client *http.Client, baseURL string, job loadJob, useIndex bool) (time.Duration, int, int) {
	body, _ := json.Marshal(QueryRequest{Query: job.query.Text, UseIndex: useIndex})
	req, err := http.NewRequest(http.MethodPost, baseURL+"/query", bytes.NewReader(body))
	if err != nil {
		return 0, 0, outcomeError
	}
	req.Header.Set("Content-Type", "application/json")
	if job.tenant != "" {
		req.Header.Set(TenantHeader, job.tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, outcomeError
	}
	defer resp.Body.Close()
	lat := time.Since(start)
	switch resp.StatusCode {
	case http.StatusOK:
		var qr QueryResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			return lat, 0, outcomeError
		}
		return lat, qr.RowCount, outcomeOK
	case http.StatusTooManyRequests:
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		if er.Reason == ReasonQueueFull {
			return lat, 0, outcomeShedQueue
		}
		return lat, 0, outcomeShedQuota
	default:
		io.Copy(io.Discard, resp.Body)
		return lat, 0, outcomeError
	}
}

// doWrite issues one document write and classifies its outcome.
func doWrite(client *http.Client, baseURL string, job loadJob) (time.Duration, int) {
	target := baseURL + "/document?uri=" + url.QueryEscape(job.uri)
	var req *http.Request
	var err error
	if job.remove {
		req, err = http.NewRequest(http.MethodDelete, target, nil)
	} else {
		req, err = http.NewRequest(http.MethodPut, target, bytes.NewReader(job.data))
	}
	if err != nil {
		return 0, outcomeError
	}
	if job.tenant != "" {
		req.Header.Set(TenantHeader, job.tenant)
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, outcomeError
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	lat := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		return lat, outcomeError
	}
	return lat, outcomeOK
}

// stampRevision inserts a revision marker as the first child of the root
// element, so each update carries distinct content and re-indexes; content
// without a root tag is passed through unchanged.
func stampRevision(data []byte, rev int) []byte {
	i := bytes.IndexByte(data, '>')
	if i < 0 {
		return data
	}
	note := fmt.Sprintf("<note>rev%d</note>", rev)
	out := make([]byte, 0, len(data)+len(note))
	out = append(out, data[:i+1]...)
	out = append(out, note...)
	return append(out, data[i+1:]...)
}

// percentiles reduces a latency sample to p50/p95/p99/max.
func percentiles(ds []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(ds) == 0 {
		return
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	at := func(q float64) time.Duration {
		i := int(q*float64(len(ds))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(ds) {
			i = len(ds) - 1
		}
		return ds[i]
	}
	return at(0.50), at(0.95), at(0.99), ds[len(ds)-1]
}

// fetchBillingTotal reads the daemon's /billing.json total; ok is false
// when the endpoint is absent or unreadable.
func fetchBillingTotal(client *http.Client, baseURL string) (float64, bool) {
	resp, err := client.Get(baseURL + "/billing.json")
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, false
	}
	var doc struct {
		Total float64 `json:"total"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return 0, false
	}
	return doc.Total, true
}

// WaitReady polls the daemon's /readyz until it answers 200 or the timeout
// elapses.
func WaitReady(baseURL string, timeout time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/readyz")
		if err == nil {
			code := resp.StatusCode
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if code == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("serve: %s/readyz not ready after %s", baseURL, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// CheckServeMetrics scrapes /metrics and asserts the serving counters are
// live: the exposition parses and xwh_serve_admitted_total is non-zero.
// The CI smoke job uses it to prove traffic actually flowed through
// admission control.
func CheckServeMetrics(baseURL string) error {
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: /metrics answered %d", resp.StatusCode)
	}
	samples, err := obs.ParseProm(resp.Body)
	if err != nil {
		return err
	}
	for _, s := range samples {
		if s.Name == "xwh_serve_admitted_total" && s.Value > 0 {
			return nil
		}
	}
	return fmt.Errorf("serve: xwh_serve_admitted_total missing or zero in /metrics")
}
