package serve

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/pricing"
)

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestLoadReportSummary(t *testing.T) {
	r := &LoadReport{
		Offered:       100,
		Completed:     90,
		ShedQueueFull: 6,
		ShedQuota:     4,
		Rows:          180,
		P50:           2 * time.Millisecond,
		P95:           8 * time.Millisecond,
		P99:           9 * time.Millisecond,
		Max:           10 * time.Millisecond,
		Wall:          time.Second,
		ThroughputQPS: 90,
		CostUSD:       0.0009,
		CostPer1M:     10,
	}
	if got := r.ShedRate(); got != 0.10 {
		t.Fatalf("ShedRate = %v, want 0.10", got)
	}
	zero := &LoadReport{}
	if got := zero.ShedRate(); got != 0 {
		t.Fatalf("empty ShedRate = %v, want 0", got)
	}
	s := r.String()
	for _, want := range []string{"offered 100", "completed 90", "shed 10", "errors 0", "10.0%"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report summary missing %q:\n%s", want, s)
		}
	}
}

func TestPercentilesOrdering(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		// Reverse order: percentiles must sort before ranking.
		ds[i] = time.Duration(100-i) * time.Millisecond
	}
	p50, p95, p99, max := percentiles(ds)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond ||
		p99 != 99*time.Millisecond || max != 100*time.Millisecond {
		t.Fatalf("percentiles = %v %v %v %v", p50, p95, p99, max)
	}
	if p50, p95, p99, max := percentiles(nil); p50 != 0 || p95 != 0 || p99 != 0 || max != 0 {
		t.Fatal("empty percentiles should be zero")
	}
}

// The billing endpoint serves the metered invoice, fetchBillingTotal reads
// it back, and Limits reports the effective (defaulted) admission config.
func TestBillingEndpointRoundTrip(t *testing.T) {
	srv, err := New(Config{
		Backend: &fakeBackend{},
		Limits:  Limits{Workers: 2, QueueDepth: 4},
		Bill: func() pricing.Invoice {
			return pricing.Invoice{Lines: map[string]pricing.USD{"s3": 1.25, "sqs": 0.25}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, srv)
	base := "http://" + addr

	lim := srv.Limits()
	if lim.Workers != 2 || lim.QueueDepth != 4 {
		t.Fatalf("Limits = %+v", lim)
	}

	total, ok := fetchBillingTotal(http.DefaultClient, base)
	if !ok {
		t.Fatal("billing endpoint unreadable")
	}
	if total != 1.5 {
		t.Fatalf("billing total = %v, want 1.5", total)
	}
	// A daemon without a Bill hook simply has no /billing.json.
	noBill, err := New(Config{Backend: &fakeBackend{}})
	if err != nil {
		t.Fatal(err)
	}
	addr2, err := noBill.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown(t, noBill)
	if _, ok := fetchBillingTotal(http.DefaultClient, "http://"+addr2); ok {
		t.Fatal("expected no billing total without a Bill hook")
	}
}
