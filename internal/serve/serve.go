package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pricing"
)

// TenantHeader carries the caller's tenant ID; absent means TenantDefault.
const TenantHeader = "X-Tenant"

// TenantDefault is the tenant requests without a header are accounted to.
const TenantDefault = "default"

// DefaultQueryTimeout bounds how long one admitted query may take end to
// end before the serving layer gives up on it.
const DefaultQueryTimeout = 30 * time.Second

// MaxDocumentBytes bounds one PUT /document body.
const MaxDocumentBytes = 16 << 20

// Config assembles a Server.
type Config struct {
	// Backend runs admitted queries. Required.
	Backend Backend
	// Limits configures admission control (zero values select defaults).
	Limits Limits
	// QueryTimeout bounds one query's backend execution; 0 selects
	// DefaultQueryTimeout.
	QueryTimeout time.Duration
	// Registry receives the serve.* counters, gauges and histograms; nil
	// disables metrics.
	Registry *obs.Registry
	// Tracer receives one serve.admit span per request; nil disables spans.
	Tracer *obs.Tracer
	// Bill, when set, serves the warehouse's metered invoice at
	// /billing.json so the load harness can derive $/1M-queries.
	Bill func() pricing.Invoice
	// Ready lists extra readiness checks mounted on /readyz alongside the
	// server's own queue-accepting check.
	Ready []func() error
	// Now is the admission clock; nil selects time.Now.
	Now func() time.Time
}

// QueryRequest is the POST /query body.
type QueryRequest struct {
	Query    string `json:"query"`
	UseIndex bool   `json:"useIndex"`
}

// ResponseRow is one result row on the wire.
type ResponseRow struct {
	URI  string   `json:"uri"`
	Cols []string `json:"cols,omitempty"`
}

// QueryResponse is the POST /query success body.
type QueryResponse struct {
	ID        string        `json:"id"`
	Columns   []string      `json:"columns,omitempty"`
	Rows      []ResponseRow `json:"rows,omitempty"`
	RowCount  int           `json:"rowCount"`
	ElapsedMs float64       `json:"elapsedMs"`
}

// ErrorResponse is the body of every non-2xx answer. Shed requests carry
// the machine-readable reason and the Retry-After hint in milliseconds.
type ErrorResponse struct {
	Error        string `json:"error"`
	Reason       string `json:"reason,omitempty"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
}

// request is one admitted query waiting for (or on) a scheduler worker.
type request struct {
	query    string
	useIndex bool
	enqueued time.Time
	reply    chan schedResult
}

type schedResult struct {
	out *core.QueryOutcome
	err error
}

// Server is the query-serving daemon: admission control plus a bounded
// scheduler pool over a Backend, exposed as an HTTP handler.
type Server struct {
	backend Backend
	adm     *Admission
	timeout time.Duration
	reg     *obs.Registry
	tracer  *obs.Tracer
	bill    func() pricing.Invoice
	ready   []func() error

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup // admitted requests not yet answered

	queue     chan *request
	workerWG  sync.WaitGroup
	httpSrv   *http.Server
	httpErrCh chan error
}

// New builds the server and starts its scheduler pool. Callers serve
// s.Handler() themselves or use Start/Shutdown for a managed listener.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("serve: Config.Backend is required")
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = DefaultQueryTimeout
	}
	s := &Server{
		backend: cfg.Backend,
		adm:     NewAdmission(cfg.Limits, cfg.Now),
		timeout: cfg.QueryTimeout,
		reg:     cfg.Registry,
		tracer:  cfg.Tracer,
		bill:    cfg.Bill,
		ready:   cfg.Ready,
	}
	lim := s.adm.Limits()
	s.queue = make(chan *request, lim.QueueDepth)
	for i := 0; i < lim.Workers; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Limits returns the effective admission limits.
func (s *Server) Limits() Limits { return s.adm.Limits() }

// Ready reports whether the server is accepting queries (it is the queue-
// accepting readiness check behind /readyz).
func (s *Server) Ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return fmt.Errorf("serve: draining")
	}
	return nil
}

// Handler returns the full HTTP surface: POST /query, PUT/DELETE /document
// when the backend accepts writes, /billing.json when configured, and the
// obs endpoints (/metrics, /metrics.json, /trace.json, /healthz, /readyz)
// as the fallback.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/document", s.handleDocument)
	if s.bill != nil {
		mux.HandleFunc("/billing.json", s.handleBilling)
	}
	ready := append([]func() error{s.Ready}, s.ready...)
	mux.Handle("/", obs.Handler(s.reg, s.tracer, ready...))
	return mux
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for rq := range s.queue {
		s.reg.Gauge("serve.queue.depth").Add(-1)
		s.reg.Histogram("serve.queue.wait").ObserveWall(time.Since(rq.enqueued))
		out, err := s.backend.Do(rq.query, rq.useIndex, s.timeout)
		rq.reply <- schedResult{out: out, err: err}
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if _, err := core.ParseQueryText(req.Query); err != nil {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = TenantDefault
	}

	span := s.tracer.Start(obs.SpanAdmit)
	span.SetAttr("tenant", tenant)
	defer span.End()
	start := time.Now()

	rq := &request{query: req.Query, useIndex: req.UseIndex, enqueued: start, reply: make(chan schedResult, 1)}

	// Admission: the draining flag, quota charge, enqueue and WaitGroup
	// increment commit atomically, so Shutdown's drain (set draining, then
	// wait) can never miss an admitted request.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.shed(w, span, http.StatusServiceUnavailable,
			&Rejection{Reason: ReasonDraining, Tenant: tenant, RetryAfter: time.Second})
		return
	}
	if rej := s.adm.Admit(tenant); rej != nil {
		s.mu.Unlock()
		s.shed(w, span, http.StatusTooManyRequests, rej)
		return
	}
	select {
	case s.queue <- rq:
		s.inflight.Add(1)
		s.mu.Unlock()
	default:
		s.adm.Refund(tenant)
		s.mu.Unlock()
		s.shed(w, span, http.StatusTooManyRequests,
			&Rejection{Reason: ReasonQueueFull, Tenant: tenant, RetryAfter: s.timeout / 4})
		return
	}

	s.reg.Counter("serve.admitted").Inc()
	s.reg.Gauge("serve.queue.depth").Add(1)
	s.reg.Gauge("serve.inflight").Set(int64(s.adm.Inflight()))

	res := <-rq.reply
	s.adm.Release(tenant)
	s.inflight.Done()
	s.reg.Gauge("serve.inflight").Set(int64(s.adm.Inflight()))

	elapsed := time.Since(start)
	s.reg.Histogram("serve.latency").ObserveWall(elapsed)

	err := res.err
	if err == nil && res.out != nil && res.out.Err != nil {
		err = res.out.Err
	}
	if err != nil {
		s.reg.Counter("serve.failed").Inc()
		span.SetError(err)
		writeError(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.reg.Counter("serve.completed").Inc()

	resp := QueryResponse{ElapsedMs: float64(elapsed) / float64(time.Millisecond)}
	if res.out != nil {
		resp.ID = res.out.ID
		span.SetAttr("query.id", res.out.ID)
		if res.out.Result != nil {
			resp.Columns = res.out.Result.Columns
			for _, row := range res.out.Result.Rows {
				resp.Rows = append(resp.Rows, ResponseRow{URI: row.URI, Cols: row.Cols})
			}
			resp.RowCount = len(res.out.Result.Rows)
		}
	}
	span.SetAttrInt("rows", int64(resp.RowCount))
	writeJSON(w, http.StatusOK, resp)
}

// WriteResponse is the PUT/DELETE /document success body.
type WriteResponse struct {
	URI       string  `json:"uri"`
	Op        string  `json:"op"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// handleDocument is the write surface of a mutable warehouse: PUT (or POST)
// with the document's XML as the body updates — or inserts — the document
// named by the uri query parameter; DELETE removes it. Writes run on the
// backend's dedicated write path and do not pass query admission, but they
// do respect draining so Shutdown waits for in-flight writes like it waits
// for queries.
func (s *Server) handleDocument(w http.ResponseWriter, r *http.Request) {
	wb, ok := s.backend.(WriteBackend)
	if !ok || !wb.Writable() {
		writeError(w, http.StatusNotImplemented,
			ErrorResponse{Error: "serve: document writes need a mutable corpus (start the warehouse with MutableCorpus)"})
		return
	}
	uri := r.URL.Query().Get("uri")
	if uri == "" {
		writeError(w, http.StatusBadRequest, ErrorResponse{Error: "serve: missing uri query parameter"})
		return
	}

	var op string
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		op = "update"
	case http.MethodDelete:
		op = "remove"
	default:
		w.Header().Set("Allow", "PUT, POST, DELETE")
		writeError(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "PUT, POST or DELETE only"})
		return
	}
	var data []byte
	if op == "update" {
		var err error
		data, err = io.ReadAll(io.LimitReader(r.Body, MaxDocumentBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, ErrorResponse{Error: "reading body: " + err.Error()})
			return
		}
		if len(data) == 0 {
			writeError(w, http.StatusBadRequest, ErrorResponse{Error: "serve: empty document body"})
			return
		}
		if len(data) > MaxDocumentBytes {
			writeError(w, http.StatusRequestEntityTooLarge,
				ErrorResponse{Error: fmt.Sprintf("serve: document exceeds %d bytes", MaxDocumentBytes)})
			return
		}
	}

	// Same atomicity as query admission: the draining check and the
	// WaitGroup increment commit together, so a graceful Shutdown never
	// misses an accepted write.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		rej := &Rejection{Reason: ReasonDraining, RetryAfter: time.Second}
		s.reg.Counter("serve.rejected.draining").Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			ErrorResponse{Error: rej.Error(), Reason: rej.Reason, RetryAfterMs: rej.RetryAfter.Milliseconds()})
		return
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	defer s.inflight.Done()

	start := time.Now()
	var err error
	if op == "update" {
		err = wb.Update(uri, data)
	} else {
		err = wb.Remove(uri)
	}
	elapsed := time.Since(start)
	s.reg.Histogram("serve.write.latency").ObserveWall(elapsed)
	if err != nil {
		s.reg.Counter("serve.write.failed").Inc()
		writeError(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	s.reg.Counter("serve." + op + "s").Inc()
	writeJSON(w, http.StatusOK, WriteResponse{
		URI: uri, Op: op, ElapsedMs: float64(elapsed) / float64(time.Millisecond),
	})
}

// shed answers one rejected request: the reason is counted, attached to the
// admission span, and reported to the caller with a Retry-After hint —
// never silently dropped.
func (s *Server) shed(w http.ResponseWriter, span *obs.Span, status int, rej *Rejection) {
	switch rej.Reason {
	case ReasonDraining:
		s.reg.Counter("serve.rejected.draining").Inc()
	default:
		s.reg.Counter("serve.shed." + rej.Reason).Inc()
	}
	span.SetAttr("shed", rej.Reason)
	span.SetError(rej)
	secs := int64(math.Ceil(rej.RetryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeError(w, status, ErrorResponse{
		Error:        rej.Error(),
		Reason:       rej.Reason,
		RetryAfterMs: rej.RetryAfter.Milliseconds(),
	})
}

func (s *Server) handleBilling(w http.ResponseWriter, _ *http.Request) {
	inv := s.bill()
	writeJSON(w, http.StatusOK, struct {
		Lines map[string]pricing.USD `json:"lines"`
		Total pricing.USD            `json:"total"`
	}{Lines: inv.Lines, Total: inv.Total()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, e ErrorResponse) {
	writeJSON(w, status, e)
}

// Start binds addr (use "127.0.0.1:0" for an ephemeral port) and serves
// Handler() in the background, returning the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.httpErrCh = make(chan error, 1)
	go func() { s.httpErrCh <- s.httpSrv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Shutdown drains the server gracefully: new requests are rejected with
// 503, every already-admitted request runs to completion and is answered,
// then the scheduler pool, HTTP listener and backend stop.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	close(s.queue)
	s.workerWG.Wait()

	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
		if serveErr := <-s.httpErrCh; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
			err = serveErr
		}
	}
	if closeErr := s.backend.Close(); closeErr != nil && err == nil {
		err = closeErr
	}
	return err
}
