package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// fakeBackend lets tests hold queries in-flight deterministically: Do
// signals on started (if set) and then blocks until release is closed or
// receives.
type fakeBackend struct {
	started chan struct{}
	release chan struct{}
}

func (f *fakeBackend) Do(query string, useIndex bool, timeout time.Duration) (*core.QueryOutcome, error) {
	if f.started != nil {
		f.started <- struct{}{}
	}
	if f.release != nil {
		<-f.release
	}
	return &core.QueryOutcome{ID: "q-fake", Result: &engine.Result{
		Columns: []string{"c"},
		Rows:    []engine.Row{{URI: "doc", Cols: []string{"v"}}},
	}}, nil
}

func (f *fakeBackend) Close() error { return nil }

func validQuery(t *testing.T) string {
	t.Helper()
	q := workload.XMark()[0].Text
	if _, err := core.ParseQueryText(q); err != nil {
		t.Fatalf("workload query does not parse: %v", err)
	}
	return q
}

func postQuery(t *testing.T, url, tenant, query string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{Query: query, UseIndex: true})
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeError(t *testing.T, resp *http.Response) ErrorResponse {
	t.Helper()
	defer resp.Body.Close()
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	return er
}

// Queue-full shedding is deterministic: with one worker held and the
// one-slot queue occupied, the next request must answer 429 queue_full
// with a Retry-After hint — it is never silently dropped.
func TestQueueFullSheds429(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 4), release: make(chan struct{})}
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: fb, Registry: reg, Limits: Limits{Workers: 1, QueueDepth: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	q := validQuery(t)

	done := make(chan int, 2)
	// First request: admitted, popped by the worker, held in Do.
	go func() {
		resp := postQuery(t, ts.URL, "", q)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-fb.started
	// Second request: admitted, parked in the queue slot.
	go func() {
		resp := postQuery(t, ts.URL, "", q)
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	waitFor(t, func() bool { return reg.Gauge("serve.queue.depth").Value() == 1 })

	// Third request: queue full, shed.
	resp := postQuery(t, ts.URL, "", q)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 missing Retry-After header")
	}
	if er := decodeError(t, resp); er.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", er.Reason, ReasonQueueFull)
	}
	if got := reg.Counter("serve.shed.queue_full").Value(); got != 1 {
		t.Errorf("serve.shed.queue_full = %d, want 1", got)
	}

	close(fb.release)
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("held request %d finished with %d, want 200", i, code)
		}
	}
	if got := reg.Counter("serve.admitted").Value(); got != 2 {
		t.Errorf("serve.admitted = %d, want 2", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A tenant saturating its in-flight quota is isolated: its own next request
// sheds with 429 quota_inflight while another tenant sails through.
func TestTenantQuotaIsolation(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 8), release: make(chan struct{})}
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: fb, Registry: reg,
		Limits: Limits{Workers: 4, QueueDepth: 8, TenantInflight: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	q := validQuery(t)

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp := postQuery(t, ts.URL, "acme", q)
			resp.Body.Close()
			done <- resp.StatusCode
		}()
		<-fb.started // both of acme's requests are held on workers
	}

	resp := postQuery(t, ts.URL, "acme", q)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("acme over quota: status = %d, want 429", resp.StatusCode)
	}
	if er := decodeError(t, resp); er.Reason != ReasonQuotaInflight {
		t.Errorf("reason = %q, want %q", er.Reason, ReasonQuotaInflight)
	}

	// Tenant B is admitted and completes while acme saturates its share.
	bDone := make(chan int, 1)
	go func() {
		resp := postQuery(t, ts.URL, "globex", q)
		resp.Body.Close()
		bDone <- resp.StatusCode
	}()
	<-fb.started
	close(fb.release)
	if code := <-bDone; code != http.StatusOK {
		t.Errorf("globex request = %d, want 200", code)
	}
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("acme request %d = %d, want 200", i, code)
		}
	}
	if got := reg.Counter("serve.shed.quota_inflight").Value(); got != 1 {
		t.Errorf("serve.shed.quota_inflight = %d, want 1", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Graceful shutdown drains: the in-flight query completes and is answered,
// new arrivals are rejected with 503 draining, and Shutdown returns only
// after the pool stops.
func TestGracefulDrain(t *testing.T) {
	fb := &fakeBackend{started: make(chan struct{}, 1), release: make(chan struct{})}
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: fb, Registry: reg, Limits: Limits{Workers: 1, QueueDepth: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	q := validQuery(t)

	inflight := make(chan int, 1)
	go func() {
		resp := postQuery(t, ts.URL, "", q)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	<-fb.started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()
	waitFor(t, func() bool { return s.Ready() != nil })

	// New work is rejected while draining...
	resp := postQuery(t, ts.URL, "", q)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain = %d, want 503", resp.StatusCode)
	}
	if er := decodeError(t, resp); er.Reason != ReasonDraining {
		t.Errorf("reason = %q, want %q", er.Reason, ReasonDraining)
	}
	if got := reg.Counter("serve.rejected.draining").Value(); got != 1 {
		t.Errorf("serve.rejected.draining = %d, want 1", got)
	}
	// ...and /readyz reports not ready while /healthz stays up.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", hr.StatusCode)
	}
	rr, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", rr.StatusCode)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) before the in-flight query finished", err)
	default:
	}
	close(fb.release)
	if code := <-inflight; code != http.StatusOK {
		t.Errorf("in-flight request = %d, want 200 after drain", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if got := reg.Counter("serve.completed").Value(); got != 1 {
		t.Errorf("serve.completed = %d, want 1", got)
	}
}

// buildPaintingsWarehouse loads and indexes the paintings corpus.
func buildPaintingsWarehouse(t *testing.T) *core.Warehouse {
	t.Helper()
	w, err := core.New(core.Config{Strategy: index.TwoLUPI})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range xmark.Paintings() {
		if err := w.SubmitDocument(doc.URI, doc.Data); err != nil {
			t.Fatal(err)
		}
	}
	fleet := ec2.LaunchFleet(w.Ledger(), ec2.Large, 1)
	if _, err := w.IndexCorpusOn(fleet, nil); err != nil {
		t.Fatal(err)
	}
	return w
}

// canonical renders a result in the wire shape, so the served answer and
// the one-shot answer can be compared byte for byte.
func canonical(t *testing.T, columns []string, rows []ResponseRow) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Columns []string      `json:"columns"`
		Rows    []ResponseRow `json:"rows"`
	}{columns, rows})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// End to end over the live pipeline: a concurrent seeded closed-loop run
// against `serve` answers byte-identically to the one-shot RunQueryOn path
// for every query, with zero transport errors.
func TestServeEndToEndMatchesOneShot(t *testing.T) {
	w := buildPaintingsWarehouse(t)
	queries := workload.Paintings()

	// Reference answers via the one-shot path, before the serving frontend
	// owns the response queue.
	want := map[string][]byte{}
	for _, q := range queries {
		in := ec2.Launch(w.Ledger(), ec2.Large)
		res, _, err := w.RunQueryOn(in, q.Text, true)
		if err != nil {
			t.Fatalf("one-shot %s: %v", q.Name, err)
		}
		var rows []ResponseRow
		for _, r := range res.Rows {
			rows = append(rows, ResponseRow{URI: r.URI, Cols: r.Cols})
		}
		want[q.Name] = canonical(t, res.Columns, rows)
	}

	backend := NewWarehouseBackend(w, 4, ec2.XL, core.WorkerOptions{})
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: backend, Registry: reg, Limits: Limits{Workers: 4, QueueDepth: 16}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + addr
	if err := WaitReady(baseURL, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Every query, several times, concurrently.
	type answer struct {
		name string
		body []byte
		err  error
	}
	const rounds = 3
	results := make(chan answer, rounds*len(queries))
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q workload.Query) {
				defer wg.Done()
				body, _ := json.Marshal(QueryRequest{Query: q.Text, UseIndex: true})
				resp, err := http.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					results <- answer{name: q.Name, err: err}
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results <- answer{name: q.Name, err: fmt.Errorf("status %d", resp.StatusCode)}
					return
				}
				var qr QueryResponse
				if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
					results <- answer{name: q.Name, err: err}
					return
				}
				results <- answer{name: q.Name, body: canonical(t, qr.Columns, qr.Rows)}
			}(q)
		}
	}
	wg.Wait()
	close(results)
	for a := range results {
		if a.err != nil {
			t.Errorf("%s: transport error: %v", a.name, a.err)
			continue
		}
		if !bytes.Equal(a.body, want[a.name]) {
			t.Errorf("%s: served answer differs from one-shot path\n served: %s\n  want: %s",
				a.name, a.body, want[a.name])
		}
	}

	if got := reg.Counter("serve.admitted").Value(); got != rounds*int64(len(queries)) {
		t.Errorf("serve.admitted = %d, want %d", got, rounds*len(queries))
	}
	if err := CheckServeMetrics(baseURL); err != nil {
		t.Errorf("metrics check: %v", err)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// RunLoad against a live daemon: the seeded closed-loop run completes with
// zero errors and produces a sane report.
func TestRunLoadClosedLoop(t *testing.T) {
	w := buildPaintingsWarehouse(t)
	backend := NewWarehouseBackend(w, 2, ec2.XL, core.WorkerOptions{})
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: backend, Registry: reg, Limits: Limits{Workers: 4, QueueDepth: 32}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + addr

	rep, err := RunLoad(LoadOptions{
		BaseURL:     baseURL,
		Queries:     workload.Paintings(),
		Dist:        workload.DistZipf,
		Seed:        7,
		Requests:    24,
		Concurrency: 4,
		UseIndex:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0\n%s", rep.Errors, rep)
	}
	if rep.Completed != rep.Offered {
		t.Errorf("completed = %d, offered = %d (no quotas configured)", rep.Completed, rep.Offered)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 || rep.Max < rep.P99 {
		t.Errorf("percentiles out of order: p50=%s p99=%s max=%s", rep.P50, rep.P99, rep.Max)
	}
	if rep.ThroughputQPS <= 0 {
		t.Errorf("throughput = %f, want > 0", rep.ThroughputQPS)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond briefly; it fails the test on timeout.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 2s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
