package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"testing"
	"time"

	"repro/internal/cloud/ec2"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/workload"
	"repro/internal/xmark"
)

// Tests of the daemon's write surface: PUT/DELETE /document over a mutable
// warehouse, rejection when the corpus is immutable, and the mixed
// read/write load harness.

// buildMutablePaintingsWarehouse loads and indexes the paintings corpus
// into a mutable-corpus warehouse.
func buildMutablePaintingsWarehouse(t *testing.T) *core.Warehouse {
	t.Helper()
	w, err := core.New(core.Config{Strategy: index.TwoLUPI, MutableCorpus: true, CompactEveryDocs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range xmark.Paintings() {
		if err := w.SubmitDocument(doc.URI, doc.Data); err != nil {
			t.Fatal(err)
		}
	}
	fleet := ec2.LaunchFleet(w.Ledger(), ec2.Large, 1)
	if _, err := w.IndexCorpusOn(fleet, nil); err != nil {
		t.Fatal(err)
	}
	return w
}

// queryRows posts one query and returns its rows as sorted "uri|cols"
// strings.
func queryRows(t *testing.T, baseURL, query string) []string {
	t.Helper()
	resp := postQuery(t, baseURL, "", query)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status = %d", resp.StatusCode)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	rows := make([]string, len(qr.Rows))
	for i, r := range qr.Rows {
		rows[i] = fmt.Sprintf("%s|%v", r.URI, r.Cols)
	}
	sort.Strings(rows)
	return rows
}

func doDocument(t *testing.T, method, baseURL, uri string, body []byte) *http.Response {
	t.Helper()
	target := baseURL + "/document"
	if uri != "" {
		target += "?uri=" + url.QueryEscape(uri)
	}
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, target, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// The full write round-trip over HTTP: removing a document makes its rows
// vanish from the next answer, re-inserting the identical content restores
// the original answer byte for byte, and the write counters account every
// accepted mutation.
func TestDocumentWriteEndpoint(t *testing.T) {
	w := buildMutablePaintingsWarehouse(t)
	backend := NewWarehouseBackend(w, 2, ec2.XL, core.WorkerOptions{})
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: backend, Registry: reg, Limits: Limits{Workers: 2, QueueDepth: 8}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	baseURL := "http://" + addr
	if err := WaitReady(baseURL, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Find a workload query whose answer spans at least two documents.
	var query string
	var base []string
	for _, q := range workload.Paintings() {
		rows := queryRows(t, baseURL, q.Text)
		uris := map[string]bool{}
		for _, r := range rows {
			uris[r[:bytes.IndexByte([]byte(r), '|')]] = true
		}
		if len(uris) >= 2 {
			query, base = q.Text, rows
			break
		}
	}
	if query == "" {
		t.Fatal("no paintings query spans two documents")
	}
	victim := base[0][:bytes.IndexByte([]byte(base[0]), '|')]
	var victimData []byte
	for _, d := range xmark.Paintings() {
		if d.URI == victim {
			victimData = d.Data
		}
	}
	if victimData == nil {
		t.Fatalf("row URI %q not in the paintings corpus", victim)
	}

	// DELETE: the document's rows vanish; every other row survives.
	resp := doDocument(t, http.MethodDelete, baseURL, victim, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status = %d", resp.StatusCode)
	}
	var want []string
	for _, r := range base {
		if r[:bytes.IndexByte([]byte(r), '|')] != victim {
			want = append(want, r)
		}
	}
	got := queryRows(t, baseURL, query)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("after DELETE:\n got %v\nwant %v", got, want)
	}

	// PUT the identical content back: the original answer returns exactly.
	resp = doDocument(t, http.MethodPut, baseURL, victim, victimData)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	var wr WriteResponse
	if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if wr.URI != victim || wr.Op != "update" {
		t.Errorf("write response = %+v", wr)
	}
	got = queryRows(t, baseURL, query)
	if fmt.Sprint(got) != fmt.Sprint(base) {
		t.Errorf("after re-insert:\n got %v\nwant %v", got, base)
	}

	// Malformed writes are rejected without touching the corpus.
	for _, tc := range []struct {
		method, uri string
		body        []byte
		status      int
	}{
		{http.MethodPut, "", []byte("<a/>"), http.StatusBadRequest},               // missing uri
		{http.MethodPut, "doc.xml", nil, http.StatusBadRequest},                   // empty body
		{http.MethodGet, "doc.xml", nil, http.StatusMethodNotAllowed},             // reads live on /query
		{http.MethodPut, "doc.xml", []byte("<a"), http.StatusInternalServerError}, // unparsable XML
	} {
		resp := doDocument(t, tc.method, baseURL, tc.uri, tc.body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s uri=%q: status = %d, want %d", tc.method, tc.uri, resp.StatusCode, tc.status)
		}
	}

	if got := reg.Counter("serve.updates").Value(); got != 1 {
		t.Errorf("serve.updates = %d, want 1", got)
	}
	if got := reg.Counter("serve.removes").Value(); got != 1 {
		t.Errorf("serve.removes = %d, want 1", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// A daemon over an immutable warehouse refuses writes with 501.
func TestDocumentWriteRejectedWhenImmutable(t *testing.T) {
	w := buildPaintingsWarehouse(t)
	backend := NewWarehouseBackend(w, 1, ec2.XL, core.WorkerOptions{})
	s, err := New(Config{Backend: backend, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp := doDocument(t, http.MethodPut, "http://"+addr, "doc.xml", []byte("<a/>"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("PUT on immutable daemon = %d, want 501", resp.StatusCode)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// The mixed read/write load harness: a seeded closed-loop run interleaving
// queries, updates and removes completes with zero errors and accounts
// every write.
func TestRunLoadMixedWrites(t *testing.T) {
	w := buildMutablePaintingsWarehouse(t)
	backend := NewWarehouseBackend(w, 2, ec2.XL, core.WorkerOptions{})
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: backend, Registry: reg, Limits: Limits{Workers: 4, QueueDepth: 32}})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var pool []WriteDoc
	for _, d := range xmark.Paintings() {
		pool = append(pool, WriteDoc{URI: d.URI, Data: d.Data})
	}
	rep, err := RunLoad(LoadOptions{
		BaseURL:     "http://" + addr,
		Queries:     workload.Paintings(),
		Dist:        workload.DistUniform,
		Seed:        7,
		Requests:    24,
		Concurrency: 4,
		UseIndex:    true,
		WriteEvery:  3,
		WriteDocs:   pool,
		RemoveEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d, want 0\n%s", rep.Errors, rep)
	}
	if rep.Completed != rep.Offered {
		t.Errorf("completed = %d, offered = %d", rep.Completed, rep.Offered)
	}
	// 24 requests, every 3rd a write: 8 writes, of which every 4th (2) is a
	// remove.
	if rep.Updates != 6 || rep.Removes != 2 {
		t.Errorf("updates = %d removes = %d, want 6 and 2\n%s", rep.Updates, rep.Removes, rep)
	}
	if rep.WriteP95 <= 0 {
		t.Errorf("write p95 = %s, want > 0", rep.WriteP95)
	}
	if got := reg.Counter("serve.updates").Value(); got != 6 {
		t.Errorf("serve.updates = %d, want 6", got)
	}
	if got := reg.Counter("serve.removes").Value(); got != 2 {
		t.Errorf("serve.removes = %d, want 2", got)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}
