package twigjoin

import (
	"context"
	"sort"
	"sync"

	"repro/internal/idblock"
	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// This file is the operate-on-compressed counterpart of twigjoin.go: the
// same holistic bottom-up candidate computation, but over blocked identifier
// sets (package idblock) instead of decoded streams. Three mechanisms keep
// the work proportional to the answer rather than the posting size:
//
//   - Block skipping. Before decoding an ancestor block, its summary header
//     is tested against each child candidate set's summary: an ancestor's
//     pre is strictly below its descendants' and its post strictly above,
//     so a block whose pre range starts at or after the child set's last
//     pre, or whose post range ends at or below the child set's lowest
//     post, cannot yield a candidate and is skipped whole.
//   - Lazy leaves. A leaf's candidate set is its raw Set; the parent probes
//     it block-wise, and a probe often resolves on headers alone (a block
//     that lies entirely inside an ancestor's descendant interval answers a
//     descendant probe without decoding).
//   - Galloping cursors. Ancestors are filtered in increasing pre order, so
//     each (parent, child) edge keeps a cursor at the previous probe's
//     boundary and advances by exponential search — a merge when the sides
//     are balanced, a binary search when one side is much smaller.
//
// The kernels are exact: MatchIndexed and CandidatesIndexed agree
// elementwise with Match and Candidates on every input (the differential
// tests assert this on seeded random corpora).

// IndexedStreams maps each pattern node to its blocked identifier set.
type IndexedStreams map[*pattern.Node]*idblock.Set

// JoinStats counts the block-level work of one indexed join. BlocksRead
// counts block-payload consultations (decodes are memoized inside the Set,
// so a consultation is not necessarily a fresh varint decode);
// BlocksSkipped counts blocks and probes resolved on headers alone.
type JoinStats struct {
	BlocksRead    int64
	BlocksSkipped int64
}

// Add accumulates o into s.
func (s *JoinStats) Add(o JoinStats) {
	s.BlocksRead += o.BlocksRead
	s.BlocksSkipped += o.BlocksSkipped
}

// summary are the bounds of a whole candidate set, the other half of every
// block-skip decision.
type summary struct {
	minPre, maxPre     int32
	minPost, maxPost   int32
	minDepth, maxDepth int32
}

// candView is one node's candidate set during the bottom-up pass: either a
// lazy unfiltered Set (leaves — probed block-wise, never decoded up front)
// or a decoded, filtered stream (internal nodes), with the set's summary
// and, for pooled streams, the buffer to release when the parent is done.
type candView struct {
	set  *idblock.Set
	ids  Stream
	pool *Stream
	sum  summary
	n    int
}

var streamPool = sync.Pool{New: func() any { return new(Stream) }}

func (cv *candView) release() {
	if cv != nil && cv.pool != nil {
		*cv.pool = (*cv.pool)[:0]
		streamPool.Put(cv.pool)
		cv.pool, cv.ids = nil, nil
	}
}

// setSummary folds a Set's block headers into whole-set bounds; no payload
// is touched.
func setSummary(s *idblock.Set) summary {
	h := s.Header(0)
	sum := summary{h.MinPre, h.MaxPre, h.MinPost, h.MaxPost, h.MinDepth, h.MaxDepth}
	for i := 1; i < s.Blocks(); i++ {
		h := s.Header(i)
		sum.maxPre = max(sum.maxPre, h.MaxPre)
		sum.minPre = min(sum.minPre, h.MinPre)
		sum.maxPost = max(sum.maxPost, h.MaxPost)
		sum.minPost = min(sum.minPost, h.MinPost)
		sum.maxDepth = max(sum.maxDepth, h.MaxDepth)
		sum.minDepth = min(sum.minDepth, h.MinDepth)
	}
	return sum
}

// streamSummary computes the bounds of a non-empty decoded stream.
func streamSummary(s Stream) summary {
	sum := summary{
		minPre: s[0].Pre, maxPre: s[len(s)-1].Pre,
		minPost: s[0].Post, maxPost: s[0].Post,
		minDepth: s[0].Depth, maxDepth: s[0].Depth,
	}
	for _, id := range s[1:] {
		sum.minPost = min(sum.minPost, id.Post)
		sum.maxPost = max(sum.maxPost, id.Post)
		sum.minDepth = min(sum.minDepth, id.Depth)
		sum.maxDepth = max(sum.maxDepth, id.Depth)
	}
	return sum
}

// blockCanMatch reports whether an ancestor block with header h can contain
// an element having a descendant (Child: a child) in the candidate view cv.
// The conditions are necessary, never sufficient — false positives cost a
// decode, false negatives would cost correctness, so each follows directly
// from the interval containment of the pre/post scheme.
func blockCanMatch(h idblock.Header, cv *candView, axis pattern.Axis) bool {
	if h.MinPre >= cv.sum.maxPre || h.MaxPost <= cv.sum.minPost {
		return false
	}
	if axis == pattern.Child {
		// A child sits exactly one level below its parent.
		if h.MaxDepth+1 < cv.sum.minDepth || h.MinDepth+1 > cv.sum.maxDepth {
			return false
		}
	}
	return true
}

// probeCursor is the per-edge galloping state: the boundary "first element
// after the probed ancestor" only moves right as ancestors are probed in
// pre order, so each probe resumes where the last one stopped.
type probeCursor struct {
	pos   int // decoded-view index lower bound
	block int // lazy-view block index lower bound
}

// seekAfter returns the smallest j >= from with s[j].Pre > pre, by
// exponential search from `from` followed by a binary search in the bracket
// — O(log d) in the distance d advanced, not in len(s).
func seekAfter(s Stream, from int, pre int32) int {
	n := len(s)
	if from >= n || s[from].Pre > pre {
		return from
	}
	step := 1
	lo := from
	for lo+step < n && s[lo+step].Pre <= pre {
		lo += step
		step <<= 1
	}
	hi := lo + step
	if hi > n {
		hi = n
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return s[lo+i].Pre > pre })
}

// hasMatchBelowView is hasMatchBelow against a candidate view, advancing
// the edge's galloping cursor.
func hasMatchBelowView(anc xmltree.NodeID, cv *candView, axis pattern.Axis, cur *probeCursor, js *JoinStats) (bool, error) {
	if cv.ids != nil {
		j := seekAfter(cv.ids, cur.pos, anc.Pre)
		cur.pos = j
		if axis == pattern.Descendant {
			return j < len(cv.ids) && cv.ids[j].Post < anc.Post, nil
		}
		for ; j < len(cv.ids) && cv.ids[j].Post < anc.Post; j++ {
			if cv.ids[j].Depth == anc.Depth+1 {
				return true, nil
			}
		}
		return false, nil
	}
	return hasMatchBelowSet(anc, cv.set, axis, cur, js)
}

// hasMatchBelowSet probes a lazy Set block-wise. The block holding the
// boundary element is located by galloping over headers; descendant probes
// then often resolve on that block's post range alone, and child probes
// walk the descendant run skipping fully-contained blocks with no element
// at the child depth.
func hasMatchBelowSet(anc xmltree.NodeID, set *idblock.Set, axis pattern.Axis, cur *probeCursor, js *JoinStats) (bool, error) {
	nb := set.Blocks()
	bi := cur.block
	if bi < nb && set.Header(bi).MaxPre <= anc.Pre {
		step := 1
		lo := bi
		for lo+step < nb && set.Header(lo+step).MaxPre <= anc.Pre {
			lo += step
			step <<= 1
		}
		hi := lo + step
		if hi > nb {
			hi = nb
		}
		bi = lo + sort.Search(hi-lo, func(i int) bool { return set.Header(lo+i).MaxPre > anc.Pre })
	}
	cur.block = bi
	if bi == nb {
		return false, nil
	}
	if axis == pattern.Descendant {
		h := set.Header(bi)
		if h.MinPre > anc.Pre {
			// Every earlier block precedes anc, so the block's first element
			// is the boundary element; extreme post ranges decide without
			// decoding (descendant-contiguity: if the boundary element is not
			// a descendant, nothing later is).
			if h.MaxPost < anc.Post {
				js.BlocksSkipped++
				return true, nil
			}
			if h.MinPost > anc.Post {
				js.BlocksSkipped++
				return false, nil
			}
		}
		js.BlocksRead++
		ids, err := set.Block(bi)
		if err != nil {
			return false, err
		}
		j := seekAfter(ids, 0, anc.Pre)
		return j < len(ids) && ids[j].Post < anc.Post, nil
	}
	for ; bi < nb; bi++ {
		h := set.Header(bi)
		if h.MinPre > anc.Pre {
			if h.MinPost > anc.Post {
				// No element of this block is a descendant, and the run is
				// contiguous: it ended at or before the block boundary.
				return false, nil
			}
			if h.MaxPost < anc.Post && (h.MinDepth > anc.Depth+1 || h.MaxDepth < anc.Depth+1) {
				// Entirely descendants, none at the child depth.
				js.BlocksSkipped++
				continue
			}
		}
		js.BlocksRead++
		ids, err := set.Block(bi)
		if err != nil {
			return false, err
		}
		for j := seekAfter(ids, 0, anc.Pre); j < len(ids); j++ {
			if ids[j].Post >= anc.Post {
				return false, nil
			}
			if ids[j].Depth == anc.Depth+1 {
				return true, nil
			}
		}
	}
	return false, nil
}

// candidatesIndexed computes C(q) bottom-up over blocked sets. pre1
// restricts the own-element scan to pre rank 1 (Child-axis roots must match
// the document root) and limit > 0 stops the scan after that many
// candidates; both apply only to the root call. A nil view means an empty
// candidate set.
func candidatesIndexed(ctx context.Context, q *pattern.Node, st IndexedStreams, js *JoinStats, pre1 bool, limit int) (*candView, error) {
	// One cancellation check per pattern node: the join between two checks
	// is bounded by one node's candidate computation, so a cancelled query
	// stops without polling inside the hot block loops.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	own := st[q]
	if own.Len() == 0 {
		return nil, nil
	}
	if len(q.Children) == 0 && !pre1 {
		return &candView{set: own, sum: setSummary(own), n: own.Len()}, nil
	}
	kids := make([]*candView, len(q.Children))
	release := func() {
		for _, kv := range kids {
			kv.release()
		}
	}
	for i, c := range q.Children {
		kv, err := candidatesIndexed(ctx, c, st, js, false, -1)
		if err != nil || kv == nil {
			release()
			return nil, err
		}
		kids[i] = kv
	}
	cursors := make([]probeCursor, len(q.Children))
	pool := streamPool.Get().(*Stream)
	out := (*pool)[:0]
scan:
	for bi := 0; bi < own.Blocks(); bi++ {
		h := own.Header(bi)
		if pre1 && (h.MinPre > 1 || h.MaxPre < 1) {
			js.BlocksSkipped++
			continue
		}
		for i, c := range q.Children {
			if !blockCanMatch(h, kids[i], c.Axis) {
				js.BlocksSkipped++
				continue scan
			}
		}
		js.BlocksRead++
		ids, err := own.Block(bi)
		if err != nil {
			release()
			*pool = out[:0]
			streamPool.Put(pool)
			return nil, err
		}
		for _, id := range ids {
			if pre1 && id.Pre != 1 {
				continue
			}
			ok := true
			for i, c := range q.Children {
				m, err := hasMatchBelowView(id, kids[i], c.Axis, &cursors[i], js)
				if err != nil {
					release()
					*pool = out[:0]
					streamPool.Put(pool)
					return nil, err
				}
				if !m {
					ok = false
					break
				}
			}
			if ok {
				out = append(out, id)
				if limit > 0 && len(out) >= limit {
					break scan
				}
			}
		}
	}
	release()
	if len(out) == 0 {
		*pool = out[:0]
		streamPool.Put(pool)
		return nil, nil
	}
	*pool = out
	return &candView{ids: out, pool: pool, sum: streamSummary(out), n: len(out)}, nil
}

// MatchIndexed decides the same predicate as Match over blocked sets,
// decoding only the blocks the headers cannot rule out and stopping at the
// first root candidate. Missing streams are treated as empty; js (optional)
// accumulates the block-level work.
func MatchIndexed(t *pattern.Tree, st IndexedStreams, js *JoinStats) (bool, error) {
	return MatchIndexedCtx(nil, t, st, js)
}

// MatchIndexedCtx is MatchIndexed with cancellation: the join checks ctx
// once per pattern node and returns ctx's error when it is done. A nil ctx
// never cancels.
func MatchIndexedCtx(ctx context.Context, t *pattern.Tree, st IndexedStreams, js *JoinStats) (bool, error) {
	if t == nil || t.Root == nil {
		return false, nil
	}
	if js == nil {
		js = &JoinStats{}
	}
	cv, err := candidatesIndexed(ctx, t.Root, st, js, t.Root.Axis == pattern.Child, 1)
	if err != nil || cv == nil {
		return false, err
	}
	matched := cv.n > 0
	cv.release()
	return matched, nil
}

// CandidatesIndexed returns the same candidate set as Candidates, computed
// over blocked sets. The returned stream is freshly allocated.
func CandidatesIndexed(t *pattern.Tree, st IndexedStreams, js *JoinStats) (Stream, error) {
	return CandidatesIndexedCtx(nil, t, st, js)
}

// CandidatesIndexedCtx is CandidatesIndexed with cancellation, checked once
// per pattern node. A nil ctx never cancels.
func CandidatesIndexedCtx(ctx context.Context, t *pattern.Tree, st IndexedStreams, js *JoinStats) (Stream, error) {
	if t == nil || t.Root == nil {
		return nil, nil
	}
	if js == nil {
		js = &JoinStats{}
	}
	cv, err := candidatesIndexed(ctx, t.Root, st, js, t.Root.Axis == pattern.Child, -1)
	if err != nil || cv == nil {
		return nil, err
	}
	var out Stream
	if cv.ids != nil {
		out = append(out, cv.ids...)
	} else {
		all, err := cv.set.All()
		if err != nil {
			return nil, err
		}
		out = append(out, all...)
	}
	cv.release()
	return out, nil
}

// SemijoinIndexed returns the elements of ancestors having at least one
// descendant (Child: child) in descendants, like Semijoin but over blocked
// sets: ancestor blocks are discarded on their headers, survivors decode
// into a pooled scratch buffer, and the descendant side is probed with a
// galloping block cursor. Both sets are in pre order; the result preserves
// it and is freshly allocated.
func SemijoinIndexed(ancestors, descendants *idblock.Set, axis pattern.Axis, js *JoinStats) (Stream, error) {
	if js == nil {
		js = &JoinStats{}
	}
	if ancestors.Len() == 0 || descendants.Len() == 0 {
		return nil, nil
	}
	dv := &candView{set: descendants, sum: setSummary(descendants), n: descendants.Len()}
	var cur probeCursor
	var out Stream
	scratch := streamPool.Get().(*Stream)
	arena := idblock.GetArena()
	defer func() {
		idblock.PutArena(arena)
		*scratch = (*scratch)[:0]
		streamPool.Put(scratch)
	}()
	for bi := 0; bi < ancestors.Blocks(); bi++ {
		h := ancestors.Header(bi)
		if !blockCanMatch(h, dv, axis) {
			js.BlocksSkipped++
			continue
		}
		js.BlocksRead++
		buf, err := ancestors.AppendBlockArena([]xmltree.NodeID((*scratch)[:0]), bi, arena)
		if err != nil {
			return nil, err
		}
		*scratch = Stream(buf)
		for _, a := range buf {
			m, err := hasMatchBelowView(a, dv, axis, &cur, js)
			if err != nil {
				return nil, err
			}
			if m {
				out = append(out, a)
			}
		}
	}
	return out, nil
}
