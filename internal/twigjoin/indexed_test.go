package twigjoin

import (
	"testing"

	"repro/internal/idblock"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// blockEncoders are the two blocked wire encoders the indexed-join tests
// exercise: version-1 delta+varint payloads and version-2 bit-packed
// payloads. Every indexed-vs-decoded differential runs under both.
var blockEncoders = []struct {
	name string
	fn   func([]xmltree.NodeID, int, int) [][]byte
}{
	{"varint", idblock.Encode},
	{"packed", idblock.EncodePacked},
}

// toIndexed converts decoded streams to blocked sets by a full
// encode/parse/merge round trip with a small block size, so multi-block
// skipping is exercised even on small documents. Empty streams are left out
// of the map — MatchIndexed must treat missing streams as empty.
func toIndexed(t *testing.T, streams Streams, blockSize int, enc func([]xmltree.NodeID, int, int) [][]byte) IndexedStreams {
	t.Helper()
	st := IndexedStreams{}
	for q, s := range streams {
		if len(s) == 0 {
			continue
		}
		blobs := enc(s, blockSize, 1<<10)
		sets := make([]*idblock.Set, 0, len(blobs))
		for _, b := range blobs {
			set, err := idblock.Parse(b)
			if err != nil {
				t.Fatalf("Parse round trip: %v", err)
			}
			sets = append(sets, set)
		}
		merged, ok := idblock.Merge(sets)
		if !ok {
			t.Fatal("Merge rejected non-overlapping encoder output")
		}
		st[q] = merged
	}
	return st
}

// toIndexedDecoded wraps each stream as a pre-decoded single-block set, the
// shape cached postings take when the store held legacy blobs.
func toIndexedDecoded(streams Streams) IndexedStreams {
	st := IndexedStreams{}
	for q, s := range streams {
		if set := idblock.FromIDs(s); set != nil {
			st[q] = set
		}
	}
	return st
}

func TestMatchIndexedSimpleTwig(t *testing.T) {
	d := doc(t, `<a><b><c/></b><d/></a>`)
	cases := []struct {
		q    string
		want bool
	}{
		{`//a[/b[/c], /d]`, true},
		{`//a[//c, /d]`, true},
		{`//a[/c]`, false},
		{`//b[/c]`, true},
		{`//a[/b[/d]]`, false},
		{`//d[/c]`, false},
		{`//a[/b, /d, /e]`, false},
		{`/a[//c]`, true},
		{`/b[/c]`, false},
	}
	for _, c := range cases {
		tr := tree(t, c.q)
		streams := StreamsFromDocument(tr, d)
		for _, st := range []IndexedStreams{
			toIndexed(t, streams, 2, idblock.Encode),
			toIndexed(t, streams, 2, idblock.EncodePacked),
			toIndexedDecoded(streams),
		} {
			got, err := MatchIndexed(tr, st, nil)
			if err != nil {
				t.Fatalf("MatchIndexed(%s): %v", c.q, err)
			}
			if got != c.want {
				t.Errorf("MatchIndexed(%s) = %v, want %v", c.q, got, c.want)
			}
		}
	}
}

func TestMatchIndexedEmptyAndMissing(t *testing.T) {
	q := tree(t, `//a[/b]`)
	if got, err := MatchIndexed(q, IndexedStreams{}, nil); err != nil || got {
		t.Errorf("MatchIndexed(empty) = %v, %v", got, err)
	}
	if got, err := MatchIndexed(nil, IndexedStreams{}, nil); err != nil || got {
		t.Errorf("MatchIndexed(nil tree) = %v, %v", got, err)
	}
	if got, err := CandidatesIndexed(nil, IndexedStreams{}, nil); err != nil || got != nil {
		t.Errorf("CandidatesIndexed(nil tree) = %v, %v", got, err)
	}
}

// Differential property: on generated corpus documents, the block-skipping
// kernels agree elementwise with the full-decode kernels — for blocked sets
// of several block sizes and for pre-decoded single-block sets.
func TestIndexedAgreesWithDecoded(t *testing.T) {
	queries := []string{
		`//item[/name, /payment]`,
		`//item[//name]`,
		`//person[/profile[/education], /name]`,
		`//open_auction[/bidder[/increase], /type]`,
		`//site[//mail[/text]]`,
		`//closed_auction[/price]`,
		`//item[/mailbox[/mail[/text]], /location]`,
		`/site[//incategory]`,
		`//listitem[/text]`,
		`//annotation[/description[/text], /author]`,
	}
	cfg := xmark.DefaultConfig(25)
	cfg.TargetDocBytes = 4 << 10
	var totals JoinStats
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := tree(t, qs)
			streams := StreamsFromDocument(q, d)
			wantMatch := Match(q, streams)
			wantCands := Candidates(q, streams)
			for _, bs := range []int{1, 3, 7, 128} {
				for _, be := range blockEncoders {
					st := toIndexed(t, streams, bs, be.fn)
					var js JoinStats
					gotMatch, err := MatchIndexed(q, st, &js)
					if err != nil {
						t.Fatal(err)
					}
					if gotMatch != wantMatch {
						t.Errorf("doc %d query %s bs %d %s: MatchIndexed=%v, Match=%v",
							i, qs, bs, be.name, gotMatch, wantMatch)
					}
					gotCands, err := CandidatesIndexed(q, st, &js)
					if err != nil {
						t.Fatal(err)
					}
					if !streamsEqual(gotCands, wantCands) {
						t.Errorf("doc %d query %s bs %d %s: CandidatesIndexed=%v, Candidates=%v",
							i, qs, bs, be.name, gotCands, wantCands)
					}
					totals.Add(js)
				}
			}
			st := toIndexedDecoded(streams)
			if gotMatch, err := MatchIndexed(q, st, nil); err != nil || gotMatch != wantMatch {
				t.Errorf("doc %d query %s decoded: MatchIndexed=%v,%v, Match=%v",
					i, qs, gotMatch, err, wantMatch)
			}
		}
	}
	// The small block sizes must have produced actual skips, or the test is
	// not exercising the header paths at all.
	if totals.BlocksSkipped == 0 || totals.BlocksRead == 0 {
		t.Errorf("join stats = %+v, want both counters nonzero", totals)
	}
}

func TestSemijoinIndexedAgreesWithSemijoin(t *testing.T) {
	pairs := []struct{ anc, desc string }{
		{"item", "name"},
		{"person", "education"},
		{"site", "text"},
		{"name", "item"}, // inverted: usually empty output
		{"mail", "text"},
	}
	cfg := xmark.DefaultConfig(10)
	cfg.TargetDocBytes = 4 << 10
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range pairs {
			var as, ds Stream
			for _, n := range d.NodesByLabel(pr.anc) {
				as = append(as, n.ID)
			}
			for _, n := range d.NodesByLabel(pr.desc) {
				ds = append(ds, n.ID)
			}
			for _, be := range blockEncoders {
				aset, dset := idblock.FromIDs(as), idblock.FromIDs(ds)
				if len(as) >= 4 {
					aset = encodeSet(t, as, 4, be.fn)
				}
				if len(ds) >= 4 {
					dset = encodeSet(t, ds, 4, be.fn)
				}
				for _, axis := range []pattern.Axis{pattern.Descendant, pattern.Child} {
					want := Semijoin(as, ds, axis)
					got, err := SemijoinIndexed(aset, dset, axis, nil)
					if err != nil {
						t.Fatal(err)
					}
					if !streamsEqual(got, want) {
						t.Errorf("doc %d %s/%s axis %v %s: SemijoinIndexed=%v, Semijoin=%v",
							i, pr.anc, pr.desc, axis, be.name, got, want)
					}
				}
			}
		}
	}
}

func encodeSet(t *testing.T, ids Stream, blockSize int, enc func([]xmltree.NodeID, int, int) [][]byte) *idblock.Set {
	t.Helper()
	blobs := enc(ids, blockSize, 1<<20)
	sets := make([]*idblock.Set, 0, len(blobs))
	for _, b := range blobs {
		s, err := idblock.Parse(b)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, s)
	}
	s, ok := idblock.Merge(sets)
	if !ok {
		t.Fatal("Merge rejected encoder output")
	}
	return s
}

func streamsEqual(a, b Stream) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
