// Package twigjoin implements holistic twig joins over sorted streams of
// (pre, post, depth) structural identifiers, the matching machinery behind
// the LUI and 2LUPI look-ups (Sections 5.3-5.4; the paper builds on the
// holistic twig join of Bruno, Koudas and Srivastava [7]).
//
// The inputs are, for each query node, the stream of structural IDs of the
// document nodes carrying that node's label, sorted by pre — exactly what
// the LUI index stores per (key, URI). Match decides whether the document
// embeds the whole twig.
//
// The algorithm is a holistic bottom-up pass. For each query node q it
// computes the candidate set C(q): the stream elements that have, for every
// child c of q, a descendant (or child, for parent-child edges) in C(c).
// Because the streams are sorted by pre and a subtree is a contiguous pre
// interval, the ancestor-descendant check is one binary search; parent-child
// additionally scans the descendant interval for the right depth. The twig
// matches iff C(root) is non-empty, and every element of C(root) heads at
// least one full embedding. Like TwigStack, the pass never materializes
// per-path intermediate results.
//
// The package also provides binary structural semijoins, used by the
// ablation study comparing holistic against binary-join look-up plans.
package twigjoin

import (
	"sort"

	"repro/internal/pattern"
	"repro/internal/xmltree"
)

// Stream is a list of structural identifiers sorted by pre rank.
type Stream []xmltree.NodeID

// Sort orders the stream by pre rank in place.
func (s Stream) Sort() {
	sort.Slice(s, func(i, j int) bool { return s[i].Pre < s[j].Pre })
}

// IsSorted reports whether the stream is in pre order.
func (s Stream) IsSorted() bool {
	return sort.SliceIsSorted(s, func(i, j int) bool { return s[i].Pre < s[j].Pre })
}

// Streams maps each pattern node to its input stream.
type Streams map[*pattern.Node]Stream

// Match reports whether a document whose label streams are given embeds the
// twig t. A pattern root with a Child axis must match the document root
// (pre rank 1). Missing streams are treated as empty.
func Match(t *pattern.Tree, streams Streams) bool {
	return len(Candidates(t, streams)) > 0
}

// Candidates returns the candidate set C(root): the stream elements of the
// pattern root that head at least one embedding of the whole twig.
func Candidates(t *pattern.Tree, streams Streams) Stream {
	if t == nil || t.Root == nil {
		return nil
	}
	c := candidates(t.Root, streams)
	if t.Root.Axis == pattern.Child {
		// The pattern root must be the document root element.
		var filtered Stream
		for _, id := range c {
			if id.Pre == 1 {
				filtered = append(filtered, id)
			}
		}
		return filtered
	}
	return c
}

func candidates(q *pattern.Node, streams Streams) Stream {
	own := streams[q]
	if len(own) == 0 {
		return nil
	}
	if len(q.Children) == 0 {
		return own
	}
	kids := make([]Stream, len(q.Children))
	for i, c := range q.Children {
		kids[i] = candidates(c, streams)
		if len(kids[i]) == 0 {
			return nil
		}
	}
	var out Stream
	for _, id := range own {
		ok := true
		for i, c := range q.Children {
			if !hasMatchBelow(id, kids[i], c.Axis) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// hasMatchBelow reports whether the sorted stream s contains a descendant
// of anc (axis Descendant) or a child of anc (axis Child).
func hasMatchBelow(anc xmltree.NodeID, s Stream, axis pattern.Axis) bool {
	// First element strictly after anc in preorder.
	i := sort.Search(len(s), func(i int) bool { return s[i].Pre > anc.Pre })
	if axis == pattern.Descendant {
		// Descendants occupy a contiguous pre interval right after anc;
		// if the first following element is not a descendant, none is.
		return i < len(s) && s[i].Post < anc.Post
	}
	for ; i < len(s) && s[i].Post < anc.Post; i++ {
		if s[i].Depth == anc.Depth+1 {
			return true
		}
	}
	return false
}

// Semijoin returns the elements of ancestors having at least one descendant
// (or child, with parentChild) in descendants. Both streams must be sorted
// by pre; the result preserves order.
func Semijoin(ancestors, descendants Stream, axis pattern.Axis) Stream {
	var out Stream
	for _, a := range ancestors {
		if hasMatchBelow(a, descendants, axis) {
			out = append(out, a)
		}
	}
	return out
}

// MatchBinary decides the same predicate as Match using a cascade of binary
// structural semijoins (one per pattern edge, bottom-up). It exists for the
// ablation bench comparing holistic and binary plans; results are identical.
func MatchBinary(t *pattern.Tree, streams Streams) bool {
	if t == nil || t.Root == nil {
		return false
	}
	var reduce func(q *pattern.Node) Stream
	reduce = func(q *pattern.Node) Stream {
		own := streams[q]
		for _, c := range q.Children {
			cs := reduce(c)
			if len(cs) == 0 {
				return nil
			}
			own = Semijoin(own, cs, c.Axis)
			if len(own) == 0 {
				return nil
			}
		}
		return own
	}
	c := reduce(t.Root)
	if t.Root.Axis == pattern.Child {
		for _, id := range c {
			if id.Pre == 1 {
				return true
			}
		}
		return false
	}
	return len(c) > 0
}

// StreamsFromDocument builds the per-pattern-node label streams of one
// parsed document: for each pattern node, the IDs of the document's
// element/attribute nodes with that label (and kind), plus — when the
// pattern node carries a word predicate — nothing extra: predicates are
// applied by the caller. It is a convenience for tests and for the no-index
// evaluation path.
func StreamsFromDocument(t *pattern.Tree, doc *xmltree.Document) Streams {
	streams := make(Streams)
	t.Walk(func(q *pattern.Node) {
		var s Stream
		for _, n := range doc.NodesByLabel(q.Label) {
			if q.IsAttr != (n.Kind == xmltree.Attribute) {
				continue
			}
			s = append(s, n.ID)
		}
		streams[q] = s
	})
	return streams
}
