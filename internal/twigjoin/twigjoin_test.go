package twigjoin

import (
	"testing"
	"testing/quick"

	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func doc(t *testing.T, src string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.Parse("t.xml", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func tree(t *testing.T, src string) *pattern.Tree {
	t.Helper()
	return pattern.MustParse(src).Patterns[0]
}

func TestMatchSimpleTwig(t *testing.T) {
	d := doc(t, `<a><b><c/></b><d/></a>`)
	cases := []struct {
		q    string
		want bool
	}{
		{`//a[/b[/c], /d]`, true},
		{`//a[//c, /d]`, true},
		{`//a[/c]`, false},         // c is not a child of a
		{`//b[/c]`, true},          // twig rooted below the document root
		{`//a[/b[/d]]`, false},     // d not under b
		{`//d[/c]`, false},         // leaf with required child
		{`//a[/b, /d, /e]`, false}, // missing label
		{`/a[//c]`, true},          // child-axis root matches document root
		{`/b[/c]`, false},          // b is not the document root
	}
	for _, c := range cases {
		tr := tree(t, c.q)
		streams := StreamsFromDocument(tr, d)
		if got := Match(tr, streams); got != c.want {
			t.Errorf("Match(%s) = %v, want %v", c.q, got, c.want)
		}
		if got := MatchBinary(tr, streams); got != c.want {
			t.Errorf("MatchBinary(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestParentChildVsAncestorDescendant(t *testing.T) {
	// c is a grandchild of a: //a[/c] must fail, //a[//c] must succeed.
	d := doc(t, `<a><b><c/></b></a>`)
	pc := tree(t, `//a[/c]`)
	ad := tree(t, `//a[//c]`)
	if Match(pc, StreamsFromDocument(pc, d)) {
		t.Error("parent-child edge matched a grandchild")
	}
	if !Match(ad, StreamsFromDocument(ad, d)) {
		t.Error("ancestor-descendant edge missed a grandchild")
	}
}

func TestTwigNeedsCommonAncestorInstance(t *testing.T) {
	// Two items: one has the name, the other the payment. Path lookups
	// would accept; the twig join must reject a twig demanding both under
	// one item — the LUP false-positive case of Section 8.
	d := doc(t, `<site><item><name/></item><item><payment/></item></site>`)
	q := tree(t, `//item[/name, /payment]`)
	if Match(q, StreamsFromDocument(q, d)) {
		t.Error("twig matched features split across sibling items")
	}
	both := doc(t, `<site><item><name/><payment/></item></site>`)
	if !Match(q, StreamsFromDocument(q, both)) {
		t.Error("twig missed features on a single item")
	}
}

func TestCandidatesReturnRoots(t *testing.T) {
	d := doc(t, `<a><b><c/></b><b/><b><c/></b></a>`)
	q := tree(t, `//b[/c]`)
	c := Candidates(q, StreamsFromDocument(q, d))
	if len(c) != 2 {
		t.Fatalf("candidates = %v, want 2 roots", c)
	}
	if !c.IsSorted() {
		t.Error("candidates not in pre order")
	}
}

func TestAttributeStreams(t *testing.T) {
	d := doc(t, `<a id="1"><id>text</id></a>`)
	qAttr := tree(t, `//a[/@id]`)
	streams := StreamsFromDocument(qAttr, d)
	// The @id stream must contain only the attribute node, not the
	// element named id.
	var attrNode *pattern.Node
	qAttr.Walk(func(n *pattern.Node) {
		if n.IsAttr {
			attrNode = n
		}
	})
	if len(streams[attrNode]) != 1 {
		t.Fatalf("@id stream = %v", streams[attrNode])
	}
	if !Match(qAttr, streams) {
		t.Error("attribute twig did not match")
	}
}

func TestSemijoin(t *testing.T) {
	d := doc(t, `<a><b><c/></b><b/></a>`)
	var bs, cs Stream
	for _, n := range d.NodesByLabel("b") {
		bs = append(bs, n.ID)
	}
	for _, n := range d.NodesByLabel("c") {
		cs = append(cs, n.ID)
	}
	got := Semijoin(bs, cs, pattern.Child)
	if len(got) != 1 {
		t.Fatalf("Semijoin = %v", got)
	}
	if got := Semijoin(cs, bs, pattern.Child); len(got) != 0 {
		t.Errorf("inverted Semijoin = %v", got)
	}
}

func TestEmptyAndMissingStreams(t *testing.T) {
	q := tree(t, `//a[/b]`)
	if Match(q, Streams{}) {
		t.Error("matched with no streams")
	}
	if Match(nil, Streams{}) {
		t.Error("matched nil tree")
	}
}

// Differential property: on generated corpus documents and a pool of
// predicate-free patterns, Match and MatchBinary agree with each other and
// with a naive embedding search.
func TestMatchAgreesWithNaive(t *testing.T) {
	queries := []string{
		`//item[/name, /payment]`,
		`//item[//name]`,
		`//person[/profile[/education], /name]`,
		`//open_auction[/bidder[/increase], /type]`,
		`//site[//mail[/text]]`,
		`//closed_auction[/price]`,
		`//item[/mailbox[/mail[/text]], /location]`,
		`/site[//incategory]`,
		`//listitem[/text]`,
		`//annotation[/description[/text], /author]`,
	}
	cfg := xmark.DefaultConfig(40)
	cfg.TargetDocBytes = 3 << 10
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, qs := range queries {
			q := tree(t, qs)
			streams := StreamsFromDocument(q, d)
			holistic := Match(q, streams)
			binary := MatchBinary(q, streams)
			naive := naiveMatch(q.Root, d)
			if holistic != naive || binary != naive {
				t.Errorf("doc %d query %s: holistic=%v binary=%v naive=%v",
					i, qs, holistic, binary, naive)
			}
		}
	}
}

// naiveMatch is an independent brute-force embedding check.
func naiveMatch(q *pattern.Node, d *xmltree.Document) bool {
	var matchesAt func(q *pattern.Node, n *xmltree.Node) bool
	matchesAt = func(q *pattern.Node, n *xmltree.Node) bool {
		if n.Label != q.Label || q.IsAttr != (n.Kind == xmltree.Attribute) {
			return false
		}
		for _, qc := range q.Children {
			found := false
			var scan func(m *xmltree.Node)
			scan = func(m *xmltree.Node) {
				for _, c := range m.Children {
					if found {
						return
					}
					if matchesAt(qc, c) {
						found = true
						return
					}
					if qc.Axis == pattern.Descendant {
						scan(c)
					}
				}
			}
			scan(n)
			if !found {
				return false
			}
		}
		return true
	}
	for _, n := range d.Nodes() {
		if q.Axis == pattern.Child && n.Parent != nil {
			continue
		}
		if matchesAt(q, n) {
			return true
		}
	}
	return false
}

// Property: Semijoin output is always a subset of its ancestor input and
// sorted.
func TestSemijoinProperty(t *testing.T) {
	f := func(seed uint32) bool {
		cfg := xmark.DefaultConfig(10)
		cfg.TargetDocBytes = 2 << 10
		gd := xmark.GenerateDoc(cfg, int(seed%10))
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			return false
		}
		var as, ds Stream
		for _, n := range d.NodesByLabel("item") {
			as = append(as, n.ID)
		}
		for _, n := range d.NodesByLabel("name") {
			ds = append(ds, n.ID)
		}
		out := Semijoin(as, ds, pattern.Descendant)
		if !out.IsSorted() || len(out) > len(as) {
			return false
		}
		in := map[xmltree.NodeID]bool{}
		for _, a := range as {
			in[a] = true
		}
		for _, o := range out {
			if !in[o] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
