// Package vtime provides modeled ("virtual") time accounting for the
// simulated cloud substrate.
//
// The paper measures elapsed wall-clock time on live AWS machines. This
// reproduction replaces wall-clock measurements with deterministic modeled
// time: every simulated service call and every unit of simulated compute
// work yields a duration, and those durations are accumulated on timelines.
//
// A Timeline models one virtual machine: it has one lane per core. Work
// items are placed on lanes with a greedy least-loaded policy, which models
// a multi-threaded worker pool without requiring real concurrency. The
// elapsed time of a timeline is the maximum lane occupancy; the busy time is
// the sum over lanes (useful for billing CPU effort).
//
// Timelines are safe for concurrent use.
package vtime

import (
	"fmt"
	"sync"
	"time"
)

// Timeline accumulates modeled time across a fixed number of parallel lanes
// (cores). The zero value is not usable; use New.
type Timeline struct {
	mu    sync.Mutex
	lanes []time.Duration
}

// New returns a Timeline with n parallel lanes. n must be at least 1.
func New(n int) *Timeline {
	if n < 1 {
		panic(fmt.Sprintf("vtime: timeline must have at least one lane, got %d", n))
	}
	return &Timeline{lanes: make([]time.Duration, n)}
}

// Lanes reports the number of lanes.
func (t *Timeline) Lanes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.lanes)
}

// Advance adds d to the given lane. It panics if lane is out of range or d
// is negative.
func (t *Timeline) Advance(lane int, d time.Duration) {
	if d < 0 {
		panic("vtime: negative duration")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lanes[lane] += d
}

// Schedule places a work item of duration d on the least-loaded lane and
// returns the lane chosen. This greedily models a pool of workers pulling
// tasks from a shared queue.
func (t *Timeline) Schedule(d time.Duration) int {
	if d < 0 {
		panic("vtime: negative duration")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	best := 0
	for i, occ := range t.lanes {
		if occ < t.lanes[best] {
			best = i
		}
		_ = occ
	}
	t.lanes[best] += d
	return best
}

// Lane reports the accumulated time of lane i.
func (t *Timeline) Lane(i int) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lanes[i]
}

// Elapsed reports the modeled elapsed time of the timeline: the maximum
// occupancy across lanes.
func (t *Timeline) Elapsed() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var max time.Duration
	for _, occ := range t.lanes {
		if occ > max {
			max = occ
		}
	}
	return max
}

// Busy reports the total occupied time summed over all lanes.
func (t *Timeline) Busy() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum time.Duration
	for _, occ := range t.lanes {
		sum += occ
	}
	return sum
}

// Level raises every lane to the timeline's current elapsed time. It models
// a synchronization barrier: after Level, no lane can absorb new work
// "in the past" of the barrier.
func (t *Timeline) Level() {
	t.mu.Lock()
	defer t.mu.Unlock()
	var max time.Duration
	for _, occ := range t.lanes {
		if occ > max {
			max = occ
		}
	}
	for i := range t.lanes {
		t.lanes[i] = max
	}
}

// Reset clears all lanes back to zero.
func (t *Timeline) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.lanes {
		t.lanes[i] = 0
	}
}

// MaxElapsed returns the maximum Elapsed across the given timelines, i.e.
// the modeled wall-clock time of a phase executed by several machines in
// parallel. It returns 0 for an empty argument list.
func MaxElapsed(ts ...*Timeline) time.Duration {
	var max time.Duration
	for _, t := range ts {
		if e := t.Elapsed(); e > max {
			max = e
		}
	}
	return max
}

// SumBusy returns the total busy time across the given timelines; this is
// the "total effort" the paper relates to monetary cost.
func SumBusy(ts ...*Timeline) time.Duration {
	var sum time.Duration
	for _, t := range ts {
		sum += t.Busy()
	}
	return sum
}

// Hours converts a duration to fractional hours, the unit in which virtual
// machine usage is billed (Section 7.2 of the paper).
func Hours(d time.Duration) float64 {
	return d.Hours()
}

// FormatHHMM renders a duration in the "hh:mm" style used by Table 4 of the
// paper.
func FormatHHMM(d time.Duration) string {
	total := int(d.Round(time.Minute) / time.Minute)
	return fmt.Sprintf("%d:%02d", total/60, total%60)
}
