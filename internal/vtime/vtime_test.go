package vtime

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewPanicsOnZeroLanes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAdvanceAndLane(t *testing.T) {
	tl := New(2)
	tl.Advance(0, 3*time.Second)
	tl.Advance(1, 5*time.Second)
	tl.Advance(0, 1*time.Second)
	if got := tl.Lane(0); got != 4*time.Second {
		t.Errorf("lane 0 = %v, want 4s", got)
	}
	if got := tl.Lane(1); got != 5*time.Second {
		t.Errorf("lane 1 = %v, want 5s", got)
	}
}

func TestElapsedIsMaxLane(t *testing.T) {
	tl := New(3)
	tl.Advance(0, 2*time.Second)
	tl.Advance(2, 7*time.Second)
	if got := tl.Elapsed(); got != 7*time.Second {
		t.Errorf("Elapsed = %v, want 7s", got)
	}
	if got := tl.Busy(); got != 9*time.Second {
		t.Errorf("Busy = %v, want 9s", got)
	}
}

func TestScheduleBalancesLanes(t *testing.T) {
	tl := New(2)
	// Four equal tasks on two lanes must split 2/2.
	for i := 0; i < 4; i++ {
		tl.Schedule(time.Second)
	}
	if got := tl.Elapsed(); got != 2*time.Second {
		t.Errorf("Elapsed = %v, want 2s", got)
	}
}

func TestScheduleGreedyApproximation(t *testing.T) {
	// Tasks 5,4,3,3,3 on 2 lanes: greedy gives lanes {5,4+3}= {5,7} then 3,3
	// onto min lane: {5+3, 7} -> {8,7} -> {8, 7+3}= {8,10}.
	tl := New(2)
	for _, s := range []int{5, 4, 3, 3, 3} {
		tl.Schedule(time.Duration(s) * time.Second)
	}
	if got := tl.Elapsed(); got != 10*time.Second {
		t.Errorf("Elapsed = %v, want 10s", got)
	}
	if got := tl.Busy(); got != 18*time.Second {
		t.Errorf("Busy = %v, want 18s", got)
	}
}

func TestLevelActsAsBarrier(t *testing.T) {
	tl := New(2)
	tl.Advance(0, 10*time.Second)
	tl.Level()
	if got := tl.Lane(1); got != 10*time.Second {
		t.Errorf("lane 1 after Level = %v, want 10s", got)
	}
	tl.Schedule(time.Second)
	if got := tl.Elapsed(); got != 11*time.Second {
		t.Errorf("Elapsed = %v, want 11s", got)
	}
}

func TestResetClearsLanes(t *testing.T) {
	tl := New(2)
	tl.Schedule(time.Minute)
	tl.Reset()
	if tl.Elapsed() != 0 || tl.Busy() != 0 {
		t.Error("Reset did not clear the timeline")
	}
}

func TestMaxElapsedAndSumBusy(t *testing.T) {
	a, b := New(1), New(1)
	a.Advance(0, 4*time.Second)
	b.Advance(0, 9*time.Second)
	if got := MaxElapsed(a, b); got != 9*time.Second {
		t.Errorf("MaxElapsed = %v, want 9s", got)
	}
	if got := SumBusy(a, b); got != 13*time.Second {
		t.Errorf("SumBusy = %v, want 13s", got)
	}
	if got := MaxElapsed(); got != 0 {
		t.Errorf("MaxElapsed() = %v, want 0", got)
	}
}

func TestConcurrentSchedule(t *testing.T) {
	tl := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tl.Schedule(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if got := tl.Busy(); got != 800*time.Millisecond {
		t.Errorf("Busy = %v, want 800ms", got)
	}
}

func TestFormatHHMM(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "0:00"},
		{24 * time.Minute, "0:24"},
		{2*time.Hour + 11*time.Minute, "2:11"},
		{7*time.Hour + 46*time.Minute, "7:46"},
		{90 * time.Second, "0:02"}, // rounds to nearest minute
	}
	for _, c := range cases {
		if got := FormatHHMM(c.d); got != c.want {
			t.Errorf("FormatHHMM(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

// Property: for any set of non-negative task durations, Busy equals their sum
// and Elapsed is bounded by [Busy/lanes, Busy] and at least the max task.
func TestScheduleProperties(t *testing.T) {
	f := func(tasks []uint16, lanesSeed uint8) bool {
		lanes := int(lanesSeed%7) + 1
		tl := New(lanes)
		var sum, maxTask time.Duration
		for _, ms := range tasks {
			d := time.Duration(ms) * time.Millisecond
			tl.Schedule(d)
			sum += d
			if d > maxTask {
				maxTask = d
			}
		}
		if tl.Busy() != sum {
			return false
		}
		e := tl.Elapsed()
		if e > sum || e < maxTask {
			return false
		}
		// Greedy list scheduling never exceeds 2x the optimal makespan, and
		// optimal >= sum/lanes.
		lower := sum / time.Duration(lanes)
		return e <= 2*(lower+maxTask)+time.Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
