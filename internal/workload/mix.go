package workload

import (
	"fmt"
	"math/rand"
	"sync"
)

// This file generates the request streams of the serving experiments: a
// seeded, deterministic sequence of workload queries drawn either uniformly
// or with Zipfian hot-key skew. The same seed always yields the identical
// sequence, so a load run (and its shed/quota decisions downstream) can be
// replayed exactly; the scenario-matrix work reuses it for skewed replay.

// Distribution names accepted by NewMix.
const (
	DistUniform = "uniform"
	DistZipf    = "zipf"
)

// DefaultZipfS is the default Zipf exponent: a mild but clearly visible
// hot-key skew (rank 1 drawn roughly 4-5x as often as rank 10).
const DefaultZipfS = 1.4

// Mix is a seeded deterministic stream of workload queries. Next is safe
// for concurrent use; draws are handed out in one global sequence, so the
// i-th draw is the same query no matter how many goroutines consume it.
type Mix struct {
	mu      sync.Mutex
	queries []Query
	dist    string
	rng     *rand.Rand
	zipf    *rand.Zipf
	counts  []int64
	drawn   int64
}

// NewMix builds a request mix over the given query set. dist is DistUniform
// or DistZipf; s is the Zipf exponent (must exceed 1; 0 selects
// DefaultZipfS). Queries are ranked in slice order: under Zipf, queries[0]
// is the hottest key.
func NewMix(queries []Query, dist string, seed int64, s float64) (*Mix, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("workload: empty query set")
	}
	m := &Mix{
		queries: queries,
		dist:    dist,
		rng:     rand.New(rand.NewSource(seed)),
		counts:  make([]int64, len(queries)),
	}
	switch dist {
	case DistUniform:
	case DistZipf:
		if s == 0 {
			s = DefaultZipfS
		}
		if s <= 1 {
			return nil, fmt.Errorf("workload: zipf exponent %v must exceed 1", s)
		}
		m.zipf = rand.NewZipf(m.rng, s, 1, uint64(len(queries)-1))
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q (want %s or %s)",
			dist, DistUniform, DistZipf)
	}
	return m, nil
}

// Next draws the next query of the sequence.
func (m *Mix) Next() Query {
	m.mu.Lock()
	defer m.mu.Unlock()
	var i int
	if m.zipf != nil {
		i = int(m.zipf.Uint64())
	} else {
		i = m.rng.Intn(len(m.queries))
	}
	m.counts[i]++
	m.drawn++
	return m.queries[i]
}

// Draw returns the next n queries of the sequence in one call.
func (m *Mix) Draw(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = m.Next()
	}
	return out
}

// Drawn reports how many queries have been handed out.
func (m *Mix) Drawn() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.drawn
}

// Counts returns a copy of the per-rank draw counts (indexed like the query
// set the mix was built over).
func (m *Mix) Counts() []int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]int64(nil), m.counts...)
}
