package workload

import (
	"sync"
	"testing"
)

// Same seed, same distribution: the request sequence is identical draw for
// draw. This is the determinism the serving load harness depends on.
func TestMixSeededDeterminism(t *testing.T) {
	for _, dist := range []string{DistUniform, DistZipf} {
		a, err := NewMix(XMark(), dist, 42, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewMix(XMark(), dist, 42, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			qa, qb := a.Next(), b.Next()
			if qa.Name != qb.Name {
				t.Fatalf("%s: draw %d diverged: %s vs %s", dist, i, qa.Name, qb.Name)
			}
		}
		c, err := NewMix(XMark(), dist, 43, 0)
		if err != nil {
			t.Fatal(err)
		}
		same := true
		for i := 0; i < 500; i++ {
			if a.Next().Name != c.Next().Name {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: seeds 42 and 43 produced identical 500-draw sequences", dist)
		}
	}
}

// The Zipf mix must actually skew: the hottest rank is drawn far more often
// than the coldest, while the uniform mix stays roughly flat.
func TestMixZipfSkew(t *testing.T) {
	z, err := NewMix(XMark(), DistZipf, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	z.Draw(2000)
	counts := z.Counts()
	if counts[0] < 4*max64(counts[len(counts)-1], 1) {
		t.Errorf("zipf rank0=%d not clearly hotter than last rank=%d", counts[0], counts[len(counts)-1])
	}
	u, err := NewMix(XMark(), DistUniform, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	u.Draw(2000)
	ucounts := u.Counts()
	for i, c := range ucounts {
		if c < 100 || c > 400 {
			t.Errorf("uniform rank %d drawn %d times out of 2000, expected ~200", i, c)
		}
	}
	if z.Drawn() != 2000 || u.Drawn() != 2000 {
		t.Errorf("drawn = %d/%d, want 2000/2000", z.Drawn(), u.Drawn())
	}
}

// Concurrent consumers drain the same global sequence: the multiset of
// draws matches the single-threaded sequence even if interleaving differs.
func TestMixConcurrentDrawsStaySequence(t *testing.T) {
	ref, err := NewMix(XMark(), DistZipf, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	ref.Draw(400)

	conc, err := NewMix(XMark(), DistZipf, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				conc.Next()
			}
		}()
	}
	wg.Wait()
	want, got := ref.Counts(), conc.Counts()
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rank %d: concurrent count %d != sequential %d", i, got[i], want[i])
		}
	}
}

func TestMixRejectsBadConfig(t *testing.T) {
	if _, err := NewMix(nil, DistUniform, 1, 0); err == nil {
		t.Error("empty query set accepted")
	}
	if _, err := NewMix(XMark(), "diurnal", 1, 0); err == nil {
		t.Error("unknown distribution accepted")
	}
	if _, err := NewMix(XMark(), DistZipf, 1, 0.9); err == nil {
		t.Error("zipf exponent <= 1 accepted")
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
