// Package workload defines the query workloads of the experiments.
//
// XMark returns the 10-query workload of Section 8 (the paper takes its
// queries from the XMark benchmark, listed in its technical report [25]):
// the queries average around ten pattern nodes, q1 is a highly selective
// point query, and the last three feature value joins. Selectivities are
// tuned to the corpus markers of package xmark so that the Table 5 shape
// emerges: LU coarsest, LUP finer, LUI/2LUPI exact on pure tree patterns.
//
// Paintings returns the five sample queries of Figure 2, phrased against
// the paintings corpus.
package workload

import "repro/internal/pattern"

// Query is a named workload member.
type Query struct {
	// Name is the paper's identifier (q1..q10).
	Name string
	// Text is the query in the textual pattern syntax.
	Text string
	// About summarizes what the query exercises.
	About string
}

// Parse returns the compiled query.
func (q Query) Parse() *pattern.Query {
	p := pattern.MustParse(q.Text)
	p.Name = q.Name
	return p
}

// XMark returns the 10-query experimental workload.
func XMark() []Query {
	return []Query{
		{
			Name:  "q1",
			Text:  `//item[//name{val}~"Obsidian", /location{val}]`,
			About: "point query: the one item named with the rare marker; LU false positives from mail text",
		},
		{
			Name:  "q2",
			Text:  `//open_auction[/type="Featured", /annotation[/description[/text{cont}]], /seller]`,
			About: "featured auctions with full description subtrees (cont); large results",
		},
		{
			Name:  "q3",
			Text:  `//item[/location="Zanzibar", /description[/parlist[/listitem[/text]]], //name{val}]`,
			About: "items at the marker location; LU false positives from mail text mentions",
		},
		{
			Name:  "q4",
			Text:  `//item[/location="Zanzibar", /payment{val}~"Creditcard", /quantity]`,
			About: "two-branch twig whose features split across sibling items in heterogeneous docs: LUP false positives",
		},
		{
			Name:  "q5",
			Text:  `//person[/name{val}, /profile[/education="Graduate School", /age{val} in ("21","42"]], /address[/city]]`,
			About: "educated persons aged in (21,42] with full address; the range predicate is ignored at look-up (Section 5.5) and applied by the engine",
		},
		{
			Name:  "q6",
			Text:  `//open_auction[/bidder[/increase{val}, /personref], /initial{val}, /itemref]`,
			About: "low-selectivity structural twig: nearly every open-auction document matches",
		},
		{
			Name:  "q7",
			Text:  `//open_auction[/bidder[/increase], /interval[/start{val}, /end], /type]`,
			About: "twig over per-auction optional elements: LUP retains split-feature documents, LUI does not",
		},
		{
			Name: "q8",
			Text: `//person[/@id $p, /name{val}, /profile[/education="Graduate School"]], ` +
				`//closed_auction[/buyer[/@person $b], /price{val}] where $p = $b`,
			About: "value join: purchases made by persons with graduate education",
		},
		{
			Name: "q9",
			Text: `//open_auction[/seller[/@person $s], /initial{val}, /bidder[/increase]], ` +
				`//person[/@id $t, /address[/city{val}="Paris"]] where $s = $t`,
			About: "value join: auctions sold by Parisians",
		},
		{
			Name: "q10",
			Text: `//category[/@id $c, /name{val}~"Vintage"], ` +
				`//item[/incategory[/@category $d], /location{val}, //name{val}] where $c = $d`,
			About: "value join: items in marker-named categories",
		},
	}
}

// XMarkXQuery returns the same 10-query workload expressed in the XQuery
// fragment of Section 4 (package xquery translates it to the tree patterns
// of XMark; the test suite asserts both forms return identical results).
// Column order may differ between the two forms — patterns project in
// preorder, XQuery in its own translation order — but row sets agree up to
// column permutation.
func XMarkXQuery() []Query {
	return []Query{
		{Name: "q1", Text: `for $i in //item where contains($i//name, "Obsidian") ` +
			`return (string($i//name), string($i/location))`},
		{Name: "q2", Text: `for $a in //open_auction, $s in $a/seller ` +
			`where $a/type = "Featured" return $a/annotation/description/text`},
		{Name: "q3", Text: `for $i in //item, $t in $i/description/parlist/listitem/text ` +
			`where $i/location = "Zanzibar" return string($i//name)`},
		{Name: "q4", Text: `for $i in //item, $q in $i/quantity ` +
			`where $i/location = "Zanzibar" and contains($i/payment, "Creditcard") ` +
			`return string($i/payment)`},
		{Name: "q5", Text: `for $p in //person, $c in $p/address/city ` +
			`where $p/profile/education = "Graduate School" ` +
			`and $p/profile/age > "21" and $p/profile/age <= "42" ` +
			`return (string($p/name), string($p/profile/age))`},
		{Name: "q6", Text: `for $a in //open_auction, $r in $a/itemref, $pr in $a/bidder/personref ` +
			`return (string($a/bidder/increase), string($a/initial))`},
		{Name: "q7", Text: `for $a in //open_auction, $b in $a/bidder/increase, ` +
			`$e in $a/interval/end, $t in $a/type ` +
			`return string($a/interval/start)`},
		{Name: "q8", Text: `for $p in //person, $a in //closed_auction ` +
			`where $p/profile/education = "Graduate School" and $p/@id = $a/buyer/@person ` +
			`return (string($p/name), string($a/price))`},
		{Name: "q9", Text: `for $a in //open_auction, $b in $a/bidder/increase, $p in //person ` +
			`where $a/seller/@person = $p/@id and $p/address/city = "Paris" ` +
			`return (string($a/initial), string($p/address/city))`},
		{Name: "q10", Text: `for $c in //category, $i in //item ` +
			`where contains($c/name, "Vintage") and $c/@id = $i/incategory/@category ` +
			`return (string($c/name), string($i/location), string($i//name))`},
	}
}

// Paintings returns the five sample queries of Figure 2.
func Paintings() []Query {
	return []Query{
		{Name: "q1", Text: `//painting[/name{val}, //painter[/name{val}]]`,
			About: "(painting name, painter name) pairs"},
		{Name: "q2", Text: `//painting[/description{cont}, /year="1854"]`,
			About: "descriptions of paintings from 1854"},
		{Name: "q3", Text: `//painting[/name~"Lion", /painter[/name[/last{val}]]]`,
			About: "last names of painters of paintings whose name contains Lion"},
		{Name: "q4", Text: `//painting[/name{val}, /painter[/name[/last="Manet"]], /year in ("1854","1865"]]`,
			About: "Manet paintings created in (1854, 1865]"},
		{Name: "q5", Text: `//museum[/name{val}, //painting[/@id $a]], ` +
			`//painting[/@id $b, /painter[/name[/last="Delacroix"]]] where $a = $b`,
			About: "museums exposing paintings by Delacroix (value join)"},
	}
}
