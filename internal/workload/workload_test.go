package workload

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func TestAllQueriesParse(t *testing.T) {
	for _, q := range append(XMark(), Paintings()...) {
		p, err := pattern.Parse(q.Text)
		if err != nil {
			t.Errorf("%s: %v", q.Name, err)
			continue
		}
		if p.String() == "" {
			t.Errorf("%s: empty rendering", q.Name)
		}
	}
}

func TestWorkloadShape(t *testing.T) {
	qs := XMark()
	if len(qs) != 10 {
		t.Fatalf("workload size = %d", len(qs))
	}
	// The last three feature value joins; the first seven do not.
	for i, q := range qs {
		p := q.Parse()
		if i < 7 && len(p.Joins) != 0 {
			t.Errorf("%s has unexpected joins", q.Name)
		}
		if i >= 7 && len(p.Joins) == 0 {
			t.Errorf("%s lacks a value join", q.Name)
		}
	}
	// Queries average around ten nodes.
	var nodes int
	for _, q := range qs {
		p := q.Parse()
		for _, tr := range p.Patterns {
			nodes += len(tr.Nodes())
		}
	}
	if avg := float64(nodes) / float64(len(qs)); avg < 5 || avg > 14 {
		t.Errorf("average node count = %.1f, want ~10", avg)
	}
}

func TestEveryQueryHasResultsOnCorpus(t *testing.T) {
	cfg := xmark.DefaultConfig(400)
	cfg.TargetDocBytes = 4 << 10
	var docs []*xmltree.Document
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	for _, q := range XMark() {
		res, err := engine.EvalQueryOnDocs(q.Parse(), docs)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s returns no results on the default corpus", q.Name)
		}
	}
	// q1 is the point query: very few matching documents.
	res, _ := engine.EvalQueryOnDocs(XMark()[0].Parse(), docs)
	uris := map[string]bool{}
	for _, r := range res.Rows {
		uris[r.URI] = true
	}
	if len(uris) != 1 {
		t.Errorf("q1 matches %d documents, want 1", len(uris))
	}
}

func TestPaintingsQueriesOnPaintingsCorpus(t *testing.T) {
	var docs []*xmltree.Document
	for _, gd := range xmark.Paintings() {
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	for _, q := range Paintings() {
		res, err := engine.EvalQueryOnDocs(q.Parse(), docs)
		if err != nil {
			t.Fatalf("%s: %v", q.Name, err)
		}
		if len(res.Rows) == 0 {
			t.Errorf("%s returns no results", q.Name)
		}
	}
}
