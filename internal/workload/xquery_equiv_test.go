package workload

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xquery"
)

// The XQuery form of the workload must return the same rows as the
// tree-pattern form (up to column permutation — the two translations may
// order projection columns differently).
func TestXQueryWorkloadEquivalent(t *testing.T) {
	cfg := xmark.DefaultConfig(200)
	cfg.TargetDocBytes = 4 << 10
	var docs []*xmltree.Document
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	canon := func(res *engine.Result) string {
		rows := make([]string, len(res.Rows))
		for i, r := range res.Rows {
			cols := append([]string(nil), r.Cols...)
			sort.Strings(cols)
			rows[i] = r.URI + "\x1f" + strings.Join(cols, "\x1f")
		}
		sort.Strings(rows)
		return strings.Join(rows, "\n")
	}

	pats, xqs := XMark(), XMarkXQuery()
	if len(pats) != len(xqs) {
		t.Fatalf("workload sizes differ: %d vs %d", len(pats), len(xqs))
	}
	for i := range pats {
		pq := pats[i].Parse()
		xq, err := xquery.Parse(xqs[i].Text)
		if err != nil {
			t.Fatalf("%s: %v", xqs[i].Name, err)
		}
		pres, err := engine.EvalQueryOnDocs(pq, docs)
		if err != nil {
			t.Fatal(err)
		}
		xres, err := engine.EvalQueryOnDocs(xq, docs)
		if err != nil {
			t.Fatal(err)
		}
		if canon(pres) != canon(xres) {
			pc, xc := canon(pres), canon(xres)
			t.Errorf("%s: pattern (%d rows) and XQuery (%d rows) disagree\npattern form:\n%.400s\nxquery form:\n%.400s",
				pats[i].Name, len(pres.Rows), len(xres.Rows), pc, xc)
		}
		if len(pres.Rows) == 0 {
			t.Errorf("%s: no rows to compare", pats[i].Name)
		}
	}
}
