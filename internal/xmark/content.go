package xmark

import (
	"fmt"
	"math/rand"
	"strings"
)

// vocabulary is the base word pool for generated text, in the spirit of the
// Shakespearean word list the original XMark generator draws from.
var vocabulary = []string{
	"abandon", "account", "against", "already", "ancient", "anybody",
	"apparel", "arrival", "auction", "balance", "bargain", "believe",
	"between", "bidding", "brought", "cabinet", "capital", "carried",
	"century", "certain", "charity", "chamber", "citizen", "clothes",
	"collect", "comfort", "command", "company", "content", "council",
	"country", "courage", "current", "customs", "decline", "deliver",
	"diamond", "dispute", "economy", "edition", "engrave", "estates",
	"evening", "exhibit", "expense", "factory", "fashion", "feature",
	"finance", "foreign", "fortune", "forward", "founder", "gallery",
	"genuine", "greater", "handles", "harvest", "heritage", "history",
	"holiday", "honest", "imagine", "import", "improve", "invoice",
	"journey", "justice", "kingdom", "laughter", "leather", "liberty",
	"machine", "manager", "market", "measure", "medical", "message",
	"million", "mission", "monarch", "morning", "musical", "mystery",
	"nation", "natural", "neither", "notable", "observe", "offer",
	"opinion", "orchard", "organ", "outcome", "package", "painting",
	"partner", "passion", "payment", "peasant", "penalty", "perform",
	"picture", "portion", "pottery", "precise", "premium", "present",
	"produce", "profit", "promise", "protect", "purpose", "quality",
	"quarter", "receipt", "reserve", "respect", "revenue", "reward",
	"rhythm", "royalty", "satisfy", "scholar", "service", "silver",
	"society", "soldier", "standard", "station", "storage", "subject",
	"success", "supply", "support", "theatre", "thought", "trading",
	"tribute", "variety", "venture", "village", "vintage", "voyage",
	"warrant", "wealthy", "welcome", "whisper", "window", "wonder",
}

// Marker words are planted at controlled frequencies so that the workload
// queries have known, strategy-discriminating selectivities. They do not
// occur in the base vocabulary.
const (
	// MarkerRareName is the point-query marker (one item name corpus-wide).
	MarkerRareName = "Obsidian"
	// MarkerLocation marks a small fraction of item locations.
	MarkerLocation = "Zanzibar"
	// MarkerFeatured marks a fraction of open-auction types and, as label
	// noise, occasionally appears inside item descriptions.
	MarkerFeatured = "Featured"
	// MarkerEducation marks a fraction of person education values.
	MarkerEducation = "Graduate"
	// MarkerCategory marks a fraction of category names.
	MarkerCategory = "Vintage"
	// MarkerPayment is the payment method used by two-branch queries.
	MarkerPayment = "Creditcard"
)

var firstNames = []string{
	"Eugene", "Edouard", "Claude", "Berthe", "Camille", "Gustave",
	"Mary", "Paul", "Edgar", "Pierre", "Alfred", "Henri",
}

var lastNames = []string{
	"Delacroix", "Manet", "Monet", "Morisot", "Pissarro", "Courbet",
	"Cassatt", "Cezanne", "Degas", "Renoir", "Sisley", "Rousseau",
}

// Shared, bounded identifier spaces: entity @id values repeat modulo these
// sizes, so cross-document references (value joins) always have join
// partners while individual identifiers stay selective.
const (
	PersonIDSpace   = 997
	ItemIDSpace     = 1499
	CategoryIDSpace = 41
)

// HotPersonIDSpace is the "popular persons" subspace. The first person of
// every person document takes its identifier from this subspace, and a
// fraction of auction references are drawn from it, so that value joins
// against marked persons (who are always a document's first person) find
// partners at any corpus scale.
const HotPersonIDSpace = 31

// hotRefShare is the fraction of person references drawn from the popular
// subspace, a mild skew in the spirit of real-world reference popularity.
const hotRefShare = 0.3

// PersonID formats the person identifier for an ordinal.
func PersonID(ord int) string { return fmt.Sprintf("person%d", ord%PersonIDSpace) }

// ItemID formats the item identifier for an ordinal.
func ItemID(ord int) string { return fmt.Sprintf("item%d", ord%ItemIDSpace) }

// CategoryID formats the category identifier for an ordinal.
func CategoryID(ord int) string { return fmt.Sprintf("category%d", ord%CategoryIDSpace) }

// words produces n space-separated vocabulary words; if marker is nonempty
// it is spliced in at a random position.
func (g *gen) words(n int, marker string) string {
	var b strings.Builder
	b.Grow(n * 8)
	at := -1
	if marker != "" {
		at = g.rng.Intn(n)
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		if i == at {
			b.WriteString(marker)
			continue
		}
		b.WriteString(vocabulary[g.rng.Intn(len(vocabulary))])
	}
	return b.String()
}

// sentenceCase capitalizes nothing and keeps matching case-sensitive; text
// is emitted as-is.

func (g *gen) personName() string {
	return firstNames[g.rng.Intn(len(firstNames))] + " " + lastNames[g.rng.Intn(len(lastNames))]
}

func (g *gen) date() string {
	return fmt.Sprintf("%02d/%02d/%d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(4))
}

func (g *gen) timeOfDay() string {
	return fmt.Sprintf("%02d:%02d:%02d", g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60))
}

func (g *gen) price() string {
	return fmt.Sprintf("%.2f", 10+g.rng.Float64()*4990)
}

// priceIn emits a price within [lo, hi), used to plant range-query matches.
func (g *gen) priceIn(lo, hi float64) string {
	return fmt.Sprintf("%.2f", lo+g.rng.Float64()*(hi-lo))
}

func pick(rng *rand.Rand, options ...string) string {
	return options[rng.Intn(len(options))]
}

// personRef draws a person reference for an auction: mostly uniform over
// the whole identifier space, with a skew toward the popular subspace.
func (g *gen) personRef() string {
	if g.rng.Float64() < hotRefShare {
		return PersonID(g.rng.Intn(HotPersonIDSpace))
	}
	return PersonID(g.rng.Intn(PersonIDSpace))
}
