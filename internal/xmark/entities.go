package xmark

// This file writes the five entity fragments and implements the two corpus
// modifications of Section 8.1: path-structure alteration (Altered class)
// and optional-children heterogenization (Heterogeneous class), plus the
// deterministic marker planting the workload queries rely on.

// kindOrdinal returns the rank of document i among the documents of its
// kind (0-based), under the fixed kind cycle.
func kindOrdinal(i int) int {
	full := i / len(kindCycle)
	k := kindCycle[i%len(kindCycle)]
	var perCycle, before int
	for j, kj := range kindCycle {
		if kj != k {
			continue
		}
		perCycle++
		if j < i%len(kindCycle) {
			before++
		}
	}
	return full*perCycle + before
}

// kindCount returns how many documents of kind k a corpus of n docs holds.
func kindCount(n int, k Kind) int {
	var perCycle int
	for _, kj := range kindCycle {
		if kj == k {
			perCycle++
		}
	}
	count := n / len(kindCycle) * perCycle
	for j := 0; j < n%len(kindCycle); j++ {
		if kindCycle[j] == k {
			count++
		}
	}
	return count
}

// --- marker rules ------------------------------------------------------
//
// All rules are deterministic functions of the document index and the
// corpus size, so expected selectivities scale with the corpus. ko is the
// document's ordinal within its kind.

// hasRareNameMarker: exactly one item document corpus-wide carries
// MarkerRareName inside an item name (the point query, like the paper's q1).
func (g *gen) hasRareNameMarker() bool {
	if g.kind != ItemDoc {
		return false
	}
	return kindOrdinal(g.i) == kindCount(g.cfg.Docs, ItemDoc)/2
}

// hasRareNameNoise: two item documents carry MarkerRareName only inside
// mail text — label-level false positives for LU.
func (g *gen) hasRareNameNoise() bool {
	if g.kind != ItemDoc {
		return false
	}
	ko, n := kindOrdinal(g.i), kindCount(g.cfg.Docs, ItemDoc)
	return (ko == n/4 || ko == (3*n)/4) && ko != n/2
}

// hasLocationMarker: ~3% of item documents are located in MarkerLocation.
func (g *gen) hasLocationMarker() bool {
	return g.kind == ItemDoc && kindOrdinal(g.i)%29 == 7
}

// hasLocationNoise: ~2% of item documents mention MarkerLocation only in
// mail text.
func (g *gen) hasLocationNoise() bool {
	return g.kind == ItemDoc && kindOrdinal(g.i)%53 == 11
}

// hasFeaturedType: ~6% of open-auction documents are of type
// MarkerFeatured.
func (g *gen) hasFeaturedType() bool {
	return g.kind == OpenAuctionDoc && kindOrdinal(g.i)%17 == 3
}

// hasFeaturedNoise: ~3% of item documents mention MarkerFeatured in their
// description text.
func (g *gen) hasFeaturedNoise() bool {
	return g.kind == ItemDoc && kindOrdinal(g.i)%31 == 5
}

// hasEducationMarker: ~9% of person documents hold a MarkerEducation
// education.
func (g *gen) hasEducationMarker() bool {
	return g.kind == PersonDoc && kindOrdinal(g.i)%11 == 2
}

// hasCategoryMarker: ~14% of category documents have MarkerCategory in
// their name.
func (g *gen) hasCategoryMarker() bool {
	return g.kind == CategoryDoc && kindOrdinal(g.i)%7 == 1
}

// hasPriceMarker: ~8% of closed-auction documents hold a price planted in
// the range-query window [1000, 1100).
func (g *gen) hasPriceMarker() bool {
	return g.kind == ClosedAuctionDoc && kindOrdinal(g.i)%13 == 4
}

// --- item --------------------------------------------------------------

func (g *gen) item(ord int) {
	first := ord%maxEntitiesPerDoc == 0
	het := g.class == Heterogeneous

	location := pick(g.rng, "United States", "Germany", "France", "Japan", "Italy")
	if first && g.hasLocationMarker() {
		location = MarkerLocation
	}
	var nameMarker string
	if first && g.hasRareNameMarker() {
		nameMarker = MarkerRareName
	}
	payment := pick(g.rng, MarkerPayment+" Cash", "Cash", "Money order", MarkerPayment)
	// Pair-split: in heterogeneous documents, the marked item never offers
	// the marked payment method — a sibling does (emitted by the second
	// entity), so path lookups see both features but no single item has
	// them: an LUP false positive that LUI's twig join removes.
	if het && first && g.hasLocationMarker() {
		payment = "Cash"
	}
	if het && !first && g.hasLocationMarker() {
		payment = MarkerPayment
	}
	var descMarker string
	if first && g.hasFeaturedNoise() {
		descMarker = MarkerFeatured
	}
	var mailMarker string
	if first && g.hasRareNameNoise() {
		mailMarker = MarkerRareName
	}
	if first && g.hasLocationNoise() {
		mailMarker = MarkerLocation
	}

	g.open("item", "id", ItemID(ord))
	g.leaf("location", location)
	if !het || g.rng.Float64() > 0.3 {
		g.leaf("quantity", pick(g.rng, "1", "2", "3", "5", "8"))
	}
	name := g.words(3, nameMarker)
	if g.class == Altered {
		// Path alteration: the name keeps its label but moves under an
		// extra info element, so /item/name (and the LUP path) is gone.
		g.open("info")
		g.leaf("name", name)
		g.close("info")
	} else {
		g.leaf("name", name)
	}
	if !het || g.rng.Float64() > 0.5 {
		g.leaf("payment", payment)
	} else if payment == MarkerPayment {
		// Never drop the pair-split payment; the false positive depends
		// on it existing on the sibling.
		g.leaf("payment", payment)
	}
	g.open("description")
	g.open("parlist")
	for p := 0; p < 2; p++ {
		g.open("listitem")
		m := ""
		if p == 0 {
			m = descMarker
		}
		g.leaf("text", g.words(55, m))
		g.close("listitem")
	}
	g.close("parlist")
	g.close("description")
	if !het || g.rng.Float64() > 0.5 {
		g.open("shipping")
		g.buf.WriteString("Will ship " + pick(g.rng, "internationally", "only within country"))
		g.close("shipping")
	}
	g.empty("incategory", "category", CategoryID(g.rng.Intn(CategoryIDSpace)))
	g.empty("incategory", "category", CategoryID(g.rng.Intn(CategoryIDSpace)))
	if !het || g.rng.Float64() > 0.4 {
		box := func() {
			g.open("mailbox")
			g.open("mail")
			g.leaf("from", g.personName())
			g.leaf("to", g.personName())
			g.leaf("date", g.date())
			g.leaf("text", g.words(35, mailMarker))
			g.close("mail")
			g.close("mailbox")
		}
		if g.class == Altered {
			g.open("communications")
			box()
			g.close("communications")
		} else {
			box()
		}
	}
	g.close("item")
}

// --- person ------------------------------------------------------------

func (g *gen) person(ord int) {
	first := ord%maxEntitiesPerDoc == 0
	het := g.class == Heterogeneous

	id := PersonID(ord)
	if first {
		// The document's first person — the one markers attach to — lives
		// in the popular identifier subspace so that value joins find it.
		id = PersonID(kindOrdinal(g.i) % HotPersonIDSpace)
	}
	g.open("person", "id", id)
	g.leaf("name", g.personName())
	g.leaf("emailaddress", "mailto:user"+PersonID(ord)+"@example.net")
	if !het {
		g.leaf("phone", "+1 ("+g.timeOfDay()[0:2]+") 555-01"+g.timeOfDay()[3:5])
	}
	address := func() {
		g.open("address")
		g.leaf("street", g.words(2, "")+" St")
		g.leaf("city", pick(g.rng, "Paris", "Genoa", "Singapore", "Boston", "Kyoto"))
		g.leaf("country", pick(g.rng, "France", "Italy", "Singapore", "United States", "Japan"))
		g.leaf("zipcode", g.priceIn(10000, 99999)[0:5])
		g.close("address")
	}
	if het && g.rng.Float64() < 0.3 {
		// Dropped entirely.
	} else if g.class == Altered {
		g.open("contact")
		address()
		g.close("contact")
	} else {
		address()
	}
	if !het {
		g.leaf("homepage", "https://example.net/~"+PersonID(ord))
		g.leaf("creditcard", "9999 8888 7777 6666")
	}
	if !het || g.rng.Float64() > 0.2 {
		g.open("profile", "income", g.priceIn(9000, 90000))
		g.empty("interest", "category", CategoryID(g.rng.Intn(CategoryIDSpace)))
		edu := pick(g.rng, "High School", "College", "Other")
		if first && g.hasEducationMarker() {
			edu = MarkerEducation + " School"
		}
		g.leaf("education", edu)
		g.leaf("gender", pick(g.rng, "male", "female"))
		g.leaf("business", pick(g.rng, "Yes", "No"))
		g.leaf("age", pick(g.rng, "21", "28", "34", "42", "55", "63"))
		g.close("profile")
	}
	g.open("watches")
	g.empty("watch", "open_auction", "auction"+g.priceIn(0, 999)[0:3])
	g.close("watches")
	g.close("person")
}

// --- open auction ------------------------------------------------------

func (g *gen) openAuction(ord int) {
	first := ord%maxEntitiesPerDoc == 0
	het := g.class == Heterogeneous

	g.open("open_auction", "id", "openauction"+ItemID(ord)[4:])
	g.leaf("initial", g.priceIn(10, 300))
	for b := 0; b < 2+g.rng.Intn(3); b++ {
		g.open("bidder")
		g.leaf("date", g.date())
		g.leaf("time", g.timeOfDay())
		g.empty("personref", "person", g.personRef())
		g.leaf("increase", g.priceIn(1, 50))
		g.close("bidder")
	}
	if !het || g.rng.Float64() > 0.3 {
		g.leaf("current", g.price())
	}
	g.empty("itemref", "item", ItemID(g.rng.Intn(ItemIDSpace)))
	g.empty("seller", "person", g.personRef())
	annotation := func() {
		g.open("annotation")
		g.empty("author", "person", g.personRef())
		g.open("description")
		g.leaf("text", g.words(45, ""))
		g.close("description")
		g.close("annotation")
	}
	if g.class == Altered {
		g.open("info")
		annotation()
		g.close("info")
	} else {
		annotation()
	}
	g.leaf("quantity", pick(g.rng, "1", "1", "2", "3"))
	typ := "Regular"
	if first && g.hasFeaturedType() {
		typ = MarkerFeatured
	}
	if het && g.rng.Float64() < 0.4 && typ == "Regular" {
		// Optional in heterogeneous documents (never drop the marker).
	} else {
		g.leaf("type", typ)
	}
	if !het || g.rng.Float64() > 0.5 {
		// Per-auction optional in heterogeneous documents: some sibling
		// auctions keep the interval while others lose it, which creates
		// LUP false positives on twigs demanding interval plus another
		// dropped feature under one auction.
		g.open("interval")
		g.leaf("start", g.date())
		g.leaf("end", g.date())
		g.close("interval")
	}
	g.close("open_auction")
}

// --- closed auction ----------------------------------------------------

func (g *gen) closedAuction(ord int) {
	first := ord%maxEntitiesPerDoc == 0
	het := g.class == Heterogeneous

	g.open("closed_auction")
	g.empty("seller", "person", g.personRef())
	g.empty("buyer", "person", g.personRef())
	g.empty("itemref", "item", ItemID(g.rng.Intn(ItemIDSpace)))
	price := g.price()
	if first && g.hasPriceMarker() {
		price = g.priceIn(1000, 1100)
	}
	if g.class == Altered {
		g.open("transaction")
		g.leaf("price", price)
		g.close("transaction")
	} else {
		g.leaf("price", price)
	}
	if !het || g.rng.Float64() > 0.3 {
		g.leaf("date", g.date())
	}
	if !het || g.rng.Float64() > 0.4 {
		g.leaf("type", pick(g.rng, "Regular", "Featured_", "Regular"))
	}
	g.open("annotation")
	g.empty("author", "person", g.personRef())
	g.open("description")
	g.leaf("text", g.words(40, ""))
	g.close("description")
	g.close("annotation")
	g.leaf("quantity", pick(g.rng, "1", "1", "2"))
	g.close("closed_auction")
}

// --- category ----------------------------------------------------------

func (g *gen) category(ord int) {
	first := ord%maxEntitiesPerDoc == 0
	var marker string
	if first && g.hasCategoryMarker() {
		marker = MarkerCategory
	}
	g.open("category", "id", CategoryID(ord))
	g.leaf("name", g.words(2, marker))
	if g.class != Heterogeneous || g.rng.Float64() > 0.5 {
		g.open("description")
		g.leaf("text", g.words(30, ""))
		g.close("description")
	}
	g.close("category")
}
