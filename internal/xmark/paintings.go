package xmark

import "fmt"

// This file provides the small paintings/museums corpus used by the paper's
// running example (Figures 2 and 3): the documents "delacroix.xml" and
// "manet.xml" verbatim, plus further painting and museum documents so that
// all five sample queries of Figure 2 (including the value join q5) have
// answers.

// DelacroixXML and ManetXML are the two sample documents of Figure 3.
const (
	DelacroixXML = `<painting id="1854-1"><name>The Lion Hunt</name><painter><name><first>Eugene</first><last>Delacroix</last></name></painter></painting>`
	ManetXML     = `<painting id="1863-1"><name>Olympia</name><painter><name><first>Edouard</first><last>Manet</last></name></painter></painting>`
)

type paintingSpec struct {
	id, name, first, last, year, desc string
}

var paintingSpecs = []paintingSpec{
	{"1854-2", "Christians Fleeing", "Eugene", "Delacroix", "1854", "A dramatic scene painted in oil on canvas"},
	{"1862-1", "Music in the Tuileries", "Edouard", "Manet", "1862", "A crowd scene in the Tuileries garden"},
	{"1863-2", "Le dejeuner sur lherbe", "Edouard", "Manet", "1863", "A luncheon on the grass that scandalized the Salon"},
	{"1865-1", "The Races at Longchamp", "Edouard", "Manet", "1865", "Horses thunder toward the viewer at Longchamp"},
	{"1872-1", "Impression Sunrise", "Claude", "Monet", "1872", "The harbor of Le Havre at sunrise"},
	{"1830-1", "Liberty Leading the People", "Eugene", "Delacroix", "1830", "Liberty personified leads the July Revolution"},
	{"1861-1", "The Lion Hunt Fragment", "Eugene", "Delacroix", "1861", "A surviving fragment of the great Lion hunt"},
}

type museumSpec struct {
	name      string
	paintings []string
}

var museumSpecs = []museumSpec{
	{"Louvre", []string{"1830-1", "1854-2"}},
	{"Musee dOrsay", []string{"1863-1", "1863-2", "1872-1"}},
	{"National Gallery", []string{"1865-1", "1862-1", "1854-1"}},
	{"Art Institute", []string{"1861-1", "1863-1"}},
}

// Paintings returns the example corpus: the two Figure 3 documents, the
// additional painting documents (with year and description, exercised by
// q2 and q4), and one document per museum (exercised by the value join q5).
func Paintings() []Doc {
	docs := []Doc{
		{URI: "delacroix.xml", Data: []byte(DelacroixXML)},
		{URI: "manet.xml", Data: []byte(ManetXML)},
	}
	for _, s := range paintingSpecs {
		xml := fmt.Sprintf(
			`<painting id=%q><name>%s</name><year>%s</year><description>%s</description>`+
				`<painter><name><first>%s</first><last>%s</last></name></painter></painting>`,
			s.id, s.name, s.year, s.desc, s.first, s.last)
		docs = append(docs, Doc{URI: painterFile(s), Data: []byte(xml)})
	}
	for i, m := range museumSpecs {
		xml := `<museum><name>` + m.name + `</name><collection>`
		for _, p := range m.paintings {
			xml += fmt.Sprintf(`<painting id=%q/>`, p)
		}
		xml += `</collection></museum>`
		docs = append(docs, Doc{URI: fmt.Sprintf("museum-%d.xml", i+1), Data: []byte(xml)})
	}
	return docs
}

func painterFile(s paintingSpec) string {
	return fmt.Sprintf("painting-%s.xml", s.id)
}
