// Package xmark generates the experimental corpus of the paper: a
// collection of XMark-like auction documents (Section 8.1).
//
// The paper generated 20,000 documents (40 GB) with the XMark generator's
// split option, then modified them in two ways to introduce heterogeneity
// so that index selectivity differences would show:
//
//   - a fraction of the documents had their path structure altered while
//     preserving the labels (so label-only lookups — LU — return them but
//     path lookups — LUP — do not);
//   - another fraction was made "more" heterogeneous by rendering more
//     elements optional children of their parents (so path lookups may
//     return documents in which no single tree-pattern embedding exists,
//     which only the structural-identifier strategies — LUI/2LUPI — filter
//     out).
//
// This generator reproduces that corpus shape at any scale. Generation is
// deterministic: document i of a given Config is always byte-identical,
// which lets multiple simulated instances generate slices of the corpus
// independently and keeps every experiment reproducible.
//
// The split XMark corpus consists of single-entity fragments. Document
// kinds cycle deterministically through item, person, open-auction,
// closed-auction and category fragments in the proportions of the XMark
// schema. Cross-references (person..., item..., category... identifiers)
// are drawn from shared ID spaces so that value-join queries have matches
// across documents.
package xmark

import (
	"bytes"
	"fmt"
	"math/rand"
)

// Class describes the structural family of a document.
type Class uint8

const (
	// Standard documents follow the regular XMark layout.
	Standard Class = iota
	// Altered documents preserve labels but change the path structure
	// (e.g. an item's name is wrapped inside an extra info element).
	Altered
	// Heterogeneous documents drop elements that are compulsory in XMark
	// and may split features across sibling entities.
	Heterogeneous
)

func (c Class) String() string {
	switch c {
	case Standard:
		return "standard"
	case Altered:
		return "altered"
	case Heterogeneous:
		return "heterogeneous"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Kind is the entity family a split document belongs to.
type Kind uint8

const (
	ItemDoc Kind = iota
	PersonDoc
	OpenAuctionDoc
	ClosedAuctionDoc
	CategoryDoc
)

func (k Kind) String() string {
	switch k {
	case ItemDoc:
		return "item"
	case PersonDoc:
		return "person"
	case OpenAuctionDoc:
		return "open_auction"
	case ClosedAuctionDoc:
		return "closed_auction"
	case CategoryDoc:
		return "category"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// kindCycle fixes the document-kind mix: 40% items, 20% persons, 20% open
// auctions, 15% closed auctions, 5% categories.
var kindCycle = [20]Kind{
	ItemDoc, PersonDoc, ItemDoc, OpenAuctionDoc, ItemDoc,
	ClosedAuctionDoc, PersonDoc, ItemDoc, OpenAuctionDoc, ItemDoc,
	ClosedAuctionDoc, PersonDoc, ItemDoc, OpenAuctionDoc, CategoryDoc,
	ItemDoc, ClosedAuctionDoc, PersonDoc, OpenAuctionDoc, ItemDoc,
}

// Config parameterizes a corpus.
type Config struct {
	// Seed makes the corpus reproducible.
	Seed int64
	// Docs is the number of documents (the paper used 20,000).
	Docs int
	// TargetDocBytes is the approximate serialized size of one document
	// (the paper's documents average 2 MB). Actual sizes vary around it.
	TargetDocBytes int
	// AlteredFraction and HeterogeneousFraction give the share of
	// documents in the two modified classes. Defaults: 0.20 and 0.25.
	AlteredFraction       float64
	HeterogeneousFraction float64
}

// DefaultConfig returns the corpus configuration used by the experiments at
// 1/1000 of the paper's scale: 20 documents of roughly 2 MB per simulated
// "GB-unit"; callers scale Docs up or down.
func DefaultConfig(docs int) Config {
	return Config{
		Seed:                  42,
		Docs:                  docs,
		TargetDocBytes:        64 << 10,
		AlteredFraction:       0.20,
		HeterogeneousFraction: 0.25,
	}
}

func (c Config) withDefaults() Config {
	if c.TargetDocBytes == 0 {
		c.TargetDocBytes = 64 << 10
	}
	if c.AlteredFraction == 0 && c.HeterogeneousFraction == 0 {
		c.AlteredFraction = 0.20
		c.HeterogeneousFraction = 0.25
	}
	return c
}

// Doc is one generated document.
type Doc struct {
	URI   string
	Data  []byte
	Kind  Kind
	Class Class
}

// URIOf returns the URI of document i, without generating it.
func URIOf(i int) string { return fmt.Sprintf("xmark-%06d.xml", i) }

// KindOf returns the kind of document i under any Config.
func KindOf(i int) Kind { return kindCycle[i%len(kindCycle)] }

// ClassOf returns the structural class of document i under cfg.
func ClassOf(cfg Config, i int) Class {
	cfg = cfg.withDefaults()
	// Classes are spread deterministically and independently of kind by
	// hashing the index.
	u := float64(splitmix(uint64(cfg.Seed)^(uint64(i)*0x9e3779b97f4a7c15))%1_000_000) / 1_000_000
	switch {
	case u < cfg.AlteredFraction:
		return Altered
	case u < cfg.AlteredFraction+cfg.HeterogeneousFraction:
		return Heterogeneous
	default:
		return Standard
	}
}

// GenerateDoc produces document i of the corpus described by cfg.
func GenerateDoc(cfg Config, i int) Doc {
	cfg = cfg.withDefaults()
	g := &gen{
		cfg:   cfg,
		i:     i,
		rng:   rand.New(rand.NewSource(cfg.Seed ^ int64(splitmix(uint64(i)+0xabcdef)))),
		kind:  KindOf(i),
		class: ClassOf(cfg, i),
	}
	g.buf.Grow(cfg.TargetDocBytes + 1024)
	g.emit()
	return Doc{URI: URIOf(i), Data: append([]byte(nil), g.buf.Bytes()...), Kind: g.kind, Class: g.class}
}

// Generate materializes the whole corpus. For large corpora prefer
// GenerateDoc in a streaming loop.
func Generate(cfg Config) []Doc {
	cfg = cfg.withDefaults()
	docs := make([]Doc, cfg.Docs)
	for i := range docs {
		docs[i] = GenerateDoc(cfg, i)
	}
	return docs
}

// TotalBytes sums the generated sizes of a corpus without keeping the
// documents in memory.
func TotalBytes(cfg Config) int64 {
	cfg = cfg.withDefaults()
	var n int64
	for i := 0; i < cfg.Docs; i++ {
		n += int64(len(GenerateDoc(cfg, i).Data))
	}
	return n
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// gen carries the state of one document's generation.
type gen struct {
	cfg   Config
	i     int
	rng   *rand.Rand
	kind  Kind
	class Class
	buf   bytes.Buffer
}

func (g *gen) emit() {
	g.open("site")
	switch g.kind {
	case ItemDoc:
		g.open("regions")
		g.open(g.region())
		for _, e := range g.planEntities(itemBaseBytes) {
			g.item(e)
		}
		g.close(g.region())
		g.close("regions")
	case PersonDoc:
		g.open("people")
		for _, e := range g.planEntities(personBaseBytes) {
			g.person(e)
		}
		g.close("people")
	case OpenAuctionDoc:
		g.open("open_auctions")
		for _, e := range g.planEntities(auctionBaseBytes) {
			g.openAuction(e)
		}
		g.close("open_auctions")
	case ClosedAuctionDoc:
		g.open("closed_auctions")
		for _, e := range g.planEntities(auctionBaseBytes) {
			g.closedAuction(e)
		}
		g.close("closed_auctions")
	case CategoryDoc:
		g.open("categories")
		for _, e := range g.planEntities(categoryBaseBytes) {
			g.category(e)
		}
		g.close("categories")
	}
	g.close("site")
}

// planEntities decides how many entities the document holds and which
// global ordinal each carries, so that entity IDs are unique corpus-wide.
func (g *gen) planEntities(baseBytes int) []int {
	n := g.cfg.TargetDocBytes / baseBytes
	if n < 1 {
		n = 1
	}
	// Heterogeneous documents get more, smaller entities, so that features
	// split across siblings (an LUP false-positive source).
	if g.class == Heterogeneous {
		n++
	}
	ords := make([]int, n)
	for j := range ords {
		ords[j] = g.i*maxEntitiesPerDoc + j
	}
	return ords
}

// maxEntitiesPerDoc bounds the entities of one document for the purpose of
// deriving unique global ordinals.
const maxEntitiesPerDoc = 1 << 12

// region picks a deterministic region name for an item document.
func (g *gen) region() string {
	regions := [...]string{"africa", "asia", "australia", "europe", "namerica", "samerica"}
	return regions[g.i%len(regions)]
}

// Approximate serialized sizes used to plan entity counts.
const (
	itemBaseBytes     = 1500
	personBaseBytes   = 900
	auctionBaseBytes  = 1100
	categoryBaseBytes = 700
)

// --- low-level writers -----------------------------------------------------

func (g *gen) open(label string, attrs ...string) {
	g.buf.WriteByte('<')
	g.buf.WriteString(label)
	for i := 0; i+1 < len(attrs); i += 2 {
		g.buf.WriteByte(' ')
		g.buf.WriteString(attrs[i])
		g.buf.WriteString(`="`)
		g.buf.WriteString(attrs[i+1])
		g.buf.WriteString(`"`)
	}
	g.buf.WriteByte('>')
}

func (g *gen) close(label string) {
	g.buf.WriteString("</")
	g.buf.WriteString(label)
	g.buf.WriteByte('>')
}

func (g *gen) leaf(label, text string) {
	g.open(label)
	g.buf.WriteString(text)
	g.close(label)
}

func (g *gen) empty(label string, attrs ...string) {
	g.buf.WriteByte('<')
	g.buf.WriteString(label)
	for i := 0; i+1 < len(attrs); i += 2 {
		g.buf.WriteByte(' ')
		g.buf.WriteString(attrs[i])
		g.buf.WriteString(`="`)
		g.buf.WriteString(attrs[i+1])
		g.buf.WriteString(`"`)
	}
	g.buf.WriteString("/>")
}
