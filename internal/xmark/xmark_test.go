package xmark

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/xmltree"
)

func TestGenerateDocDeterministic(t *testing.T) {
	cfg := DefaultConfig(40)
	a := GenerateDoc(cfg, 17)
	b := GenerateDoc(cfg, 17)
	if a.URI != b.URI || !bytes.Equal(a.Data, b.Data) {
		t.Error("GenerateDoc is not deterministic")
	}
	c := GenerateDoc(Config{Seed: 7, Docs: 40, TargetDocBytes: cfg.TargetDocBytes}, 17)
	if bytes.Equal(a.Data, c.Data) {
		t.Error("different seeds produced identical documents")
	}
}

func TestEveryDocParses(t *testing.T) {
	cfg := DefaultConfig(60)
	cfg.TargetDocBytes = 4 << 10
	for i := 0; i < cfg.Docs; i++ {
		d := GenerateDoc(cfg, i)
		doc, err := xmltree.Parse(d.URI, d.Data)
		if err != nil {
			t.Fatalf("doc %d (%s, %s): %v", i, d.Kind, d.Class, err)
		}
		if doc.Root.Label != "site" {
			t.Errorf("doc %d root = %q", i, doc.Root.Label)
		}
	}
}

func TestKindMix(t *testing.T) {
	const n = 200
	counts := map[Kind]int{}
	for i := 0; i < n; i++ {
		counts[KindOf(i)]++
	}
	want := map[Kind]int{ItemDoc: 80, PersonDoc: 40, OpenAuctionDoc: 40, ClosedAuctionDoc: 30, CategoryDoc: 10}
	for k, w := range want {
		if counts[k] != w {
			t.Errorf("%s docs = %d, want %d", k, counts[k], w)
		}
		if kindCount(n, k) != w {
			t.Errorf("kindCount(%d, %s) = %d, want %d", n, k, kindCount(n, k), w)
		}
	}
}

func TestKindOrdinal(t *testing.T) {
	// Ordinals must be dense per kind: 0,1,2,... in document order.
	next := map[Kind]int{}
	for i := 0; i < 100; i++ {
		k := KindOf(i)
		if got := kindOrdinal(i); got != next[k] {
			t.Fatalf("kindOrdinal(%d) = %d, want %d", i, got, next[k])
		}
		next[k]++
	}
}

func TestClassFractions(t *testing.T) {
	cfg := DefaultConfig(1000)
	counts := map[Class]int{}
	for i := 0; i < cfg.Docs; i++ {
		counts[ClassOf(cfg, i)]++
	}
	if a := counts[Altered]; a < 150 || a > 250 {
		t.Errorf("altered count = %d, want ~200", a)
	}
	if h := counts[Heterogeneous]; h < 200 || h > 300 {
		t.Errorf("heterogeneous count = %d, want ~250", h)
	}
}

func TestTargetSize(t *testing.T) {
	cfg := DefaultConfig(20)
	cfg.TargetDocBytes = 32 << 10
	for i := 0; i < cfg.Docs; i++ {
		d := GenerateDoc(cfg, i)
		if len(d.Data) < cfg.TargetDocBytes/3 || len(d.Data) > cfg.TargetDocBytes*3 {
			t.Errorf("doc %d (%s) size %d far from target %d", i, d.Kind, len(d.Data), cfg.TargetDocBytes)
		}
	}
}

func TestRareNameMarkerExactlyOnce(t *testing.T) {
	cfg := DefaultConfig(100)
	cfg.TargetDocBytes = 4 << 10
	inName, anywhere := 0, 0
	for i := 0; i < cfg.Docs; i++ {
		d := GenerateDoc(cfg, i)
		if !bytes.Contains(d.Data, []byte(MarkerRareName)) {
			continue
		}
		anywhere++
		doc, err := xmltree.Parse(d.URI, d.Data)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range doc.NodesByLabel("name") {
			if xmltree.ContainsWord(n.Value(), MarkerRareName) {
				inName++
			}
		}
	}
	if inName != 1 {
		t.Errorf("%s occurs in %d names, want exactly 1", MarkerRareName, inName)
	}
	if anywhere != 3 {
		t.Errorf("%s occurs in %d docs, want 3 (1 name + 2 noise)", MarkerRareName, anywhere)
	}
}

func TestAlteredDocsChangePathsNotLabels(t *testing.T) {
	cfg := DefaultConfig(400)
	cfg.TargetDocBytes = 4 << 10
	var sawAlteredItem bool
	for i := 0; i < cfg.Docs; i++ {
		if KindOf(i) != ItemDoc {
			continue
		}
		d := GenerateDoc(cfg, i)
		doc, err := xmltree.Parse(d.URI, d.Data)
		if err != nil {
			t.Fatal(err)
		}
		names := doc.NodesByLabel("name")
		if len(names) == 0 {
			t.Fatalf("doc %d has no name elements", i)
		}
		itemNameUnderInfo := false
		for _, n := range names {
			if n.Parent != nil && n.Parent.Label == "info" {
				itemNameUnderInfo = true
			}
		}
		if d.Class == Altered {
			sawAlteredItem = true
			if !itemNameUnderInfo {
				t.Errorf("altered doc %d keeps direct item/name", i)
			}
		} else if itemNameUnderInfo {
			t.Errorf("%s doc %d wraps name in info", d.Class, i)
		}
	}
	if !sawAlteredItem {
		t.Fatal("corpus contains no altered item docs")
	}
}

func TestHeterogeneousDocsDropElements(t *testing.T) {
	cfg := DefaultConfig(400)
	cfg.TargetDocBytes = 4 << 10
	dropped := 0
	checked := 0
	for i := 0; i < cfg.Docs; i++ {
		if KindOf(i) != PersonDoc || ClassOf(cfg, i) != Heterogeneous {
			continue
		}
		checked++
		d := GenerateDoc(cfg, i)
		if !bytes.Contains(d.Data, []byte("<phone>")) {
			dropped++
		}
	}
	if checked == 0 {
		t.Fatal("no heterogeneous person docs in corpus")
	}
	if dropped != checked {
		t.Errorf("heterogeneous persons keep phone in %d/%d docs", checked-dropped, checked)
	}
}

func TestSharedIDSpaces(t *testing.T) {
	if PersonID(0) != "person0" || PersonID(PersonIDSpace) != "person0" {
		t.Error("PersonID does not wrap around its space")
	}
	if ItemID(3) != "item3" || CategoryID(CategoryIDSpace+5) != "category5" {
		t.Error("ID formatting broken")
	}
}

func TestTotalBytes(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.TargetDocBytes = 2 << 10
	var want int64
	for i := 0; i < cfg.Docs; i++ {
		want += int64(len(GenerateDoc(cfg, i).Data))
	}
	if got := TotalBytes(cfg); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

func TestPaintingsCorpus(t *testing.T) {
	docs := Paintings()
	if len(docs) != 2+len(paintingSpecs)+len(museumSpecs) {
		t.Fatalf("corpus size = %d", len(docs))
	}
	uris := map[string]bool{}
	for _, d := range docs {
		if uris[d.URI] {
			t.Errorf("duplicate URI %s", d.URI)
		}
		uris[d.URI] = true
		if _, err := xmltree.Parse(d.URI, d.Data); err != nil {
			t.Errorf("%s: %v", d.URI, err)
		}
	}
	if string(docs[0].Data) != DelacroixXML || string(docs[1].Data) != ManetXML {
		t.Error("Figure 3 documents not verbatim")
	}
	// q5 needs museums referencing Delacroix paintings.
	foundRef := false
	for _, d := range docs {
		if strings.HasPrefix(d.URI, "museum-") && bytes.Contains(d.Data, []byte(`"1830-1"`)) {
			foundRef = true
		}
	}
	if !foundRef {
		t.Error("no museum references a Delacroix painting")
	}
}

func TestGenerateMatchesGenerateDoc(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.TargetDocBytes = 2 << 10
	docs := Generate(cfg)
	if len(docs) != 8 {
		t.Fatalf("Generate returned %d docs", len(docs))
	}
	for i, d := range docs {
		if single := GenerateDoc(cfg, i); !bytes.Equal(single.Data, d.Data) {
			t.Errorf("doc %d differs between Generate and GenerateDoc", i)
		}
	}
}
