package xmltree

import (
	"strings"
	"testing"
)

// Edge cases of real-world XML that the warehouse must survive.

func TestCDataBecomesText(t *testing.T) {
	d := mustParse(t, "c.xml", `<a><![CDATA[raw <markup> & stuff]]></a>`)
	if got := d.Root.Value(); got != "raw <markup> & stuff" {
		t.Errorf("value = %q", got)
	}
	// And it survives a serialization round trip (escaped).
	content := d.Root.Content()
	d2, err := Parse("c2.xml", []byte(content))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, content)
	}
	if d2.Root.Value() != d.Root.Value() {
		t.Errorf("round trip value = %q", d2.Root.Value())
	}
}

func TestEntitiesDecoded(t *testing.T) {
	d := mustParse(t, "e.xml", `<a>Tom &amp; Jerry &lt;3</a>`)
	if got := d.Root.Value(); got != "Tom & Jerry <3" {
		t.Errorf("value = %q", got)
	}
}

func TestNamespacePrefixesUseLocalNames(t *testing.T) {
	src := `<x:painting xmlns:x="http://example.org/art"><x:name>Olympia</x:name></x:painting>`
	d := mustParse(t, "ns.xml", src)
	if d.Root.Label != "painting" {
		t.Errorf("root label = %q, want local name", d.Root.Label)
	}
	if len(d.NodesByLabel("name")) != 1 {
		t.Error("namespaced child not indexed under its local name")
	}
	// The xmlns declaration itself must not become an attribute node.
	for _, n := range d.Nodes() {
		if n.Kind == Attribute && strings.Contains(n.Label, "xmlns") {
			t.Errorf("xmlns leaked as attribute: %+v", n)
		}
	}
}

func TestMixedContentOrderAndIDs(t *testing.T) {
	d := mustParse(t, "m.xml", `<p>alpha<b>beta</b>gamma<b>delta</b></p>`)
	// Value concatenates in document order.
	if got := d.Root.Value(); got != "alphabetagammadelta" {
		t.Errorf("value = %q", got)
	}
	// Text runs on both sides of elements get their own nodes.
	texts := 0
	for _, n := range d.Nodes() {
		if n.Kind == Text {
			texts++
		}
	}
	if texts != 4 {
		t.Errorf("text nodes = %d, want 4", texts)
	}
	checkInvariants(t, d)
}

func TestCommentsAndPIsIgnored(t *testing.T) {
	d := mustParse(t, "c.xml", `<?xml version="1.0"?><!-- top --><a><!-- in -->x<?pi data?></a>`)
	if d.NodeCount() != 2 { // a + text
		t.Errorf("node count = %d, want 2", d.NodeCount())
	}
	if d.Root.Value() != "x" {
		t.Errorf("value = %q", d.Root.Value())
	}
}

func TestDeepNesting(t *testing.T) {
	var b strings.Builder
	const depth = 300
	for i := 0; i < depth; i++ {
		b.WriteString("<d>")
	}
	b.WriteString("leaf")
	for i := 0; i < depth; i++ {
		b.WriteString("</d>")
	}
	d := mustParse(t, "deep.xml", b.String())
	if got := len(d.NodesByLabel("d")); got != depth {
		t.Errorf("d elements = %d", got)
	}
	deepest := d.NodesByLabel("d")[depth-1]
	if deepest.ID.Depth != depth {
		t.Errorf("deepest depth = %d, want %d", deepest.ID.Depth, depth)
	}
	if !d.Root.ID.IsAncestorOf(deepest.ID) {
		t.Error("root not ancestor of deepest node")
	}
}

func TestLargeFlatDocument(t *testing.T) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 5000; i++ {
		b.WriteString("<x/>")
	}
	b.WriteString("</r>")
	d := mustParse(t, "flat.xml", b.String())
	if d.NodeCount() != 5001 {
		t.Errorf("node count = %d", d.NodeCount())
	}
	// Postorder of the root is the node count; children are in pre order.
	xs := d.NodesByLabel("x")
	for i := 1; i < len(xs); i++ {
		if xs[i].ID.Pre <= xs[i-1].ID.Pre {
			t.Fatal("NodesByLabel not in document order")
		}
	}
}

func TestAttributeOrderIsDocumentOrder(t *testing.T) {
	d := mustParse(t, "a.xml", `<a z="1" y="2" x="3"/>`)
	want := []string{"z", "y", "x"}
	for i, c := range d.Root.Children {
		if c.Label != want[i] {
			t.Errorf("attribute %d = %q, want %q", i, c.Label, want[i])
		}
		if c.ID.Pre != int32(i+2) {
			t.Errorf("attribute %q pre = %d", c.Label, c.ID.Pre)
		}
	}
}

func TestWhitespacePreservedInsideText(t *testing.T) {
	d := mustParse(t, "w.xml", `<a>  two  spaces  </a>`)
	if got := d.Root.Value(); got != "  two  spaces  " {
		t.Errorf("value = %q (inner whitespace must survive)", got)
	}
}
