// Package xmltree parses XML documents into in-memory trees whose nodes
// carry the (pre, post, depth) structural identifiers the paper's indexes
// and structural joins are built on (Section 5, after [3]).
//
// Identifier assignment follows Figure 3 of the paper exactly:
//
//   - element, attribute and text nodes are all numbered;
//   - pre is the preorder rank (1-based), assigned to an element before its
//     attributes, which precede its element/text children in document order;
//   - post is the postorder rank; attributes and text blobs are leaves;
//   - depth starts at 1 for the root; attributes sit one level below their
//     owner element;
//   - a run of character data forms a single text node (the words of the
//     text all share that node's identifier);
//   - whitespace-only character data between elements is ignored.
//
// With these identifiers, n1 is an ancestor of n2 iff n1.pre < n2.pre and
// n1.post > n2.post (the paper's Section 5 states "n1.post < n2.post",
// which contradicts its own Figure 3 numbers; we follow the figure), and n1
// is the parent of n2 iff additionally n1.depth+1 == n2.depth.
package xmltree

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"
)

// NodeKind distinguishes the three node flavours the index sees.
type NodeKind uint8

const (
	// Element is an XML element node.
	Element NodeKind = iota
	// Attribute is an XML attribute node.
	Attribute
	// Text is a run of character data.
	Text
)

func (k NodeKind) String() string {
	switch k {
	case Element:
		return "element"
	case Attribute:
		return "attribute"
	case Text:
		return "text"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// NodeID is a (pre, post, depth) structural identifier.
type NodeID struct {
	Pre   int32
	Post  int32
	Depth int32
}

// String renders the identifier as the paper prints it, e.g. "(3, 3, 2)".
func (id NodeID) String() string {
	return fmt.Sprintf("(%d, %d, %d)", id.Pre, id.Post, id.Depth)
}

// IsAncestorOf reports whether the node identified by id is a strict
// ancestor of the node identified by other (within the same document).
func (id NodeID) IsAncestorOf(other NodeID) bool {
	return id.Pre < other.Pre && id.Post > other.Post
}

// IsParentOf reports whether id identifies the parent of other.
func (id NodeID) IsParentOf(other NodeID) bool {
	return id.IsAncestorOf(other) && id.Depth+1 == other.Depth
}

// Less orders identifiers by pre rank (document order).
func (id NodeID) Less(other NodeID) bool { return id.Pre < other.Pre }

// Node is one tree node.
type Node struct {
	Kind NodeKind
	// Label is the element or attribute name; empty for text nodes.
	Label string
	// Text is the character data of a Text node or the value of an
	// Attribute node; empty for elements.
	Text string
	ID   NodeID

	Parent *Node
	// Children lists attribute nodes first, then element and text
	// children in document order.
	Children []*Node
}

// Document is a parsed XML document.
type Document struct {
	// URI identifies the document in the warehouse (URI(d) in the paper).
	URI  string
	Root *Node
	// SourceBytes is the size of the serialized input, the s(D)
	// contribution of this document.
	SourceBytes int64

	nodes   []*Node // in pre order; nodes[pre-1]
	byLabel map[string][]*Node
}

// Parse errors.
var (
	ErrEmptyDocument = errors.New("xmltree: document has no root element")
)

// Parse builds the tree for one document.
func Parse(uri string, data []byte) (*Document, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	doc := &Document{URI: uri, SourceBytes: int64(len(data))}

	var (
		stack   []*Node
		pre     int32
		post    int32
		pending strings.Builder // accumulated character data
	)

	flushText := func() {
		if pending.Len() == 0 {
			return
		}
		s := pending.String()
		pending.Reset()
		if strings.TrimSpace(s) == "" {
			return
		}
		if len(stack) == 0 {
			return // character data outside the root: ignore
		}
		parent := stack[len(stack)-1]
		pre++
		post++
		n := &Node{
			Kind:   Text,
			Text:   s,
			ID:     NodeID{Pre: pre, Post: post, Depth: parent.ID.Depth + 1},
			Parent: parent,
		}
		parent.Children = append(parent.Children, n)
		doc.nodes = append(doc.nodes, n)
	}

	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parsing %s: %w", uri, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			flushText()
			if doc.Root != nil && len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parsing %s: multiple root elements", uri)
			}
			var parent *Node
			depth := int32(1)
			if len(stack) > 0 {
				parent = stack[len(stack)-1]
				depth = parent.ID.Depth + 1
			}
			pre++
			el := &Node{
				Kind:   Element,
				Label:  t.Name.Local,
				ID:     NodeID{Pre: pre, Depth: depth},
				Parent: parent,
			}
			if parent != nil {
				parent.Children = append(parent.Children, el)
			} else {
				doc.Root = el
			}
			doc.nodes = append(doc.nodes, el)
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				pre++
				post++
				an := &Node{
					Kind:   Attribute,
					Label:  a.Name.Local,
					Text:   a.Value,
					ID:     NodeID{Pre: pre, Post: post, Depth: depth + 1},
					Parent: el,
				}
				el.Children = append(el.Children, an)
				doc.nodes = append(doc.nodes, an)
			}
			stack = append(stack, el)
		case xml.EndElement:
			flushText()
			el := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			post++
			el.ID.Post = post
		case xml.CharData:
			pending.Write(t)
		default:
			// Comments, directives and processing instructions carry no
			// indexable content.
		}
	}
	if doc.Root == nil {
		return nil, fmt.Errorf("%w: %s", ErrEmptyDocument, uri)
	}
	doc.buildLabelIndex()
	return doc, nil
}

// buildLabelIndex materializes the label → nodes map. Parse calls it
// eagerly so that a parsed document is immutable afterwards and can be read
// from any number of goroutines (the query pipeline evaluates one document
// on several workers).
func (d *Document) buildLabelIndex() {
	d.byLabel = make(map[string][]*Node)
	for _, n := range d.nodes {
		d.byLabel[n.Label] = append(d.byLabel[n.Label], n)
	}
}

// NodeCount returns the number of nodes (elements, attributes, texts).
func (d *Document) NodeCount() int { return len(d.nodes) }

// Nodes returns all nodes in document (pre) order. The slice is shared;
// callers must not modify it.
func (d *Document) Nodes() []*Node { return d.nodes }

// NodeByPre returns the node with the given pre rank (1-based), or nil.
func (d *Document) NodeByPre(pre int32) *Node {
	if pre < 1 || int(pre) > len(d.nodes) {
		return nil
	}
	return d.nodes[pre-1]
}

// NodesByLabel returns the element or attribute nodes carrying the given
// label, in document order. Text nodes, having no label, are returned for
// label "". Parse builds the underlying map eagerly, so concurrent calls on
// a parsed document are safe; the lazy fallback only serves documents
// assembled by hand, which are single-goroutine by construction. Callers
// must not modify the result.
func (d *Document) NodesByLabel(label string) []*Node {
	if d.byLabel == nil {
		d.buildLabelIndex()
	}
	return d.byLabel[label]
}

// Value returns the string value of a node as defined in Section 4 of the
// paper: for an element, the concatenation of all its text descendants in
// document order; for an attribute or text node, its own text.
func (n *Node) Value() string {
	switch n.Kind {
	case Attribute, Text:
		return n.Text
	}
	var b strings.Builder
	n.appendText(&b)
	return b.String()
}

func (n *Node) appendText(b *strings.Builder) {
	if n.Kind == Text {
		b.WriteString(n.Text)
		return
	}
	for _, c := range n.Children {
		if c.Kind == Attribute {
			continue
		}
		c.appendText(b)
	}
}

// Content serializes the full XML subtree rooted at n, the granularity
// returned for a `cont` annotation.
func (n *Node) Content() string {
	var b strings.Builder
	n.writeXML(&b)
	return b.String()
}

func (n *Node) writeXML(b *strings.Builder) {
	switch n.Kind {
	case Text:
		xml.EscapeText(b, []byte(n.Text))
	case Attribute:
		b.WriteString(n.Label)
		b.WriteString(`="`)
		xml.EscapeText(b, []byte(n.Text))
		b.WriteString(`"`)
	case Element:
		b.WriteString("<")
		b.WriteString(n.Label)
		var rest []*Node
		for _, c := range n.Children {
			if c.Kind == Attribute {
				b.WriteString(" ")
				c.writeXML(b)
			} else {
				rest = append(rest, c)
			}
		}
		if len(rest) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteString(">")
		for _, c := range rest {
			c.writeXML(b)
		}
		b.WriteString("</")
		b.WriteString(n.Label)
		b.WriteString(">")
	}
}

// Path returns the nodes on the label path from the document root down to n,
// inclusive (the inPath(n) of Section 5). Text nodes contribute themselves
// as the last step.
func (n *Node) Path() []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Words splits a string value into the words under which full-text (w‖word)
// index keys are created: maximal runs of letters and digits. Matching is
// case-sensitive, as in the paper's examples (wOlympia, w1854).
func Words(s string) []string {
	var words []string
	start := -1
	for i, r := range s {
		if isWordRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			words = append(words, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		words = append(words, s[start:])
	}
	return words
}

// ContainsWord reports whether the word w occurs in the value s, the
// semantics of the contains(c) predicate.
func ContainsWord(s, w string) bool {
	for _, got := range Words(s) {
		if got == w {
			return true
		}
	}
	return false
}

func isWordRune(r rune) bool {
	switch {
	case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		return true
	case r == '-', r == '_':
		// Keep identifiers like "1863-1" (Figure 3's aid 1863-1) whole.
		return true
	}
	return r > 127 // non-ASCII letters kept whole
}
