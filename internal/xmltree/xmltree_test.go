package xmltree

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// The two sample documents of Figure 3.
const (
	delacroixXML = `<painting id="1854-1"><name>The Lion Hunt</name><painter><name><first>Eugene</first><last>Delacroix</last></name></painter></painting>`
	manetXML     = `<painting id="1863-1"><name>Olympia</name><painter><name><first>Edouard</first><last>Manet</last></name></painter></painting>`
)

func mustParse(t *testing.T, uri, src string) *Document {
	t.Helper()
	d, err := Parse(uri, []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestFigure3Identifiers checks the exact (pre, post, depth) assignments the
// paper shows for "manet.xml": ename -> (3,3,2) and (6,8,3); aid -> (2,1,2);
// wOlympia -> (4,2,3).
func TestFigure3Identifiers(t *testing.T) {
	d := mustParse(t, "manet.xml", manetXML)

	names := d.NodesByLabel("name")
	if len(names) != 2 {
		t.Fatalf("got %d name elements, want 2", len(names))
	}
	if got, want := names[0].ID, (NodeID{3, 3, 2}); got != want {
		t.Errorf("painting/name ID = %v, want %v", got, want)
	}
	if got, want := names[1].ID, (NodeID{6, 8, 3}); got != want {
		t.Errorf("painter/name ID = %v, want %v", got, want)
	}

	ids := d.NodesByLabel("id")
	if len(ids) != 1 || ids[0].Kind != Attribute {
		t.Fatalf("id attribute not found: %v", ids)
	}
	if got, want := ids[0].ID, (NodeID{2, 1, 2}); got != want {
		t.Errorf("@id ID = %v, want %v", got, want)
	}
	if ids[0].Text != "1863-1" {
		t.Errorf("@id value = %q", ids[0].Text)
	}

	// The text node 'Olympia' carries (4, 2, 3).
	olympia := names[0].Children[0]
	if olympia.Kind != Text || olympia.Text != "Olympia" {
		t.Fatalf("unexpected child %+v", olympia)
	}
	if got, want := olympia.ID, (NodeID{4, 2, 3}); got != want {
		t.Errorf("'Olympia' ID = %v, want %v", got, want)
	}

	// Root gets the final postorder rank.
	root := d.Root
	if root.Label != "painting" || root.ID.Depth != 1 || root.ID.Pre != 1 {
		t.Errorf("root = %+v", root.ID)
	}
	if int(root.ID.Post) != d.NodeCount() {
		t.Errorf("root post = %d, want %d", root.ID.Post, d.NodeCount())
	}
}

func TestAncestorAndParentTests(t *testing.T) {
	d := mustParse(t, "manet.xml", manetXML)
	painting := d.Root
	painterName := d.NodesByLabel("name")[1]
	first := d.NodesByLabel("first")[0]

	if !painting.ID.IsAncestorOf(painterName.ID) {
		t.Error("painting must be ancestor of painter/name")
	}
	if painting.ID.IsParentOf(painterName.ID) {
		t.Error("painting must not be parent of painter/name (depth gap)")
	}
	painter := d.NodesByLabel("painter")[0]
	if !painter.ID.IsParentOf(painterName.ID) {
		t.Error("painter must be parent of its name")
	}
	if !painterName.ID.IsParentOf(first.ID) {
		t.Error("name must be parent of first")
	}
	if painterName.ID.IsAncestorOf(painting.ID) {
		t.Error("descendant claimed to be ancestor")
	}
	if painterName.ID.IsAncestorOf(painterName.ID) {
		t.Error("node must not be its own ancestor")
	}
}

func TestValue(t *testing.T) {
	d := mustParse(t, "delacroix.xml", delacroixXML)
	if got := d.Root.Value(); got != "The Lion HuntEugeneDelacroix" {
		t.Errorf("painting value = %q", got)
	}
	name := d.NodesByLabel("name")[0]
	if got := name.Value(); got != "The Lion Hunt" {
		t.Errorf("name value = %q", got)
	}
	id := d.NodesByLabel("id")[0]
	if got := id.Value(); got != "1854-1" {
		t.Errorf("@id value = %q", got)
	}
}

func TestContentRoundTrips(t *testing.T) {
	d := mustParse(t, "delacroix.xml", delacroixXML)
	content := d.Root.Content()
	// Re-parsing the serialization must yield the identical structure.
	d2, err := Parse("again.xml", []byte(content))
	if err != nil {
		t.Fatalf("reparsing content: %v", err)
	}
	if d2.NodeCount() != d.NodeCount() {
		t.Errorf("node count %d after round trip, want %d", d2.NodeCount(), d.NodeCount())
	}
	for i, n := range d.Nodes() {
		m := d2.Nodes()[i]
		if n.Kind != m.Kind || n.Label != m.Label || n.Text != m.Text || n.ID != m.ID {
			t.Errorf("node %d differs: %+v vs %+v", i, n, m)
		}
	}
}

func TestContentEscaping(t *testing.T) {
	src := `<a x="3 &lt; 4">if a&amp;b &lt; c</a>`
	d := mustParse(t, "esc.xml", src)
	content := d.Root.Content()
	if _, err := Parse("esc2.xml", []byte(content)); err != nil {
		t.Fatalf("escaped content does not reparse: %v\n%s", err, content)
	}
	if !strings.Contains(content, "&amp;") || !strings.Contains(content, "&lt;") {
		t.Errorf("content not escaped: %s", content)
	}
}

func TestEmptyElementSerialization(t *testing.T) {
	d := mustParse(t, "e.xml", `<a><b/><c k="v"/></a>`)
	content := d.Root.Content()
	if !strings.Contains(content, "<b/>") || !strings.Contains(content, `<c k="v"/>`) {
		t.Errorf("content = %s", content)
	}
}

func TestWhitespaceBetweenElementsIgnored(t *testing.T) {
	pretty := "<painting>\n  <name>Olympia</name>\n  <year>1863</year>\n</painting>"
	d := mustParse(t, "p.xml", pretty)
	// Nodes: painting, name, 'Olympia', year, '1863' — no whitespace nodes.
	if got := d.NodeCount(); got != 5 {
		t.Errorf("NodeCount = %d, want 5", got)
	}
}

func TestPath(t *testing.T) {
	d := mustParse(t, "manet.xml", manetXML)
	last := d.NodesByLabel("last")[0]
	var labels []string
	for _, n := range last.Path() {
		labels = append(labels, n.Label)
	}
	want := []string{"painting", "painter", "name", "last"}
	if !reflect.DeepEqual(labels, want) {
		t.Errorf("path = %v, want %v", labels, want)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("x", []byte("   ")); !errors.Is(err, ErrEmptyDocument) {
		t.Errorf("empty doc: %v", err)
	}
	if _, err := Parse("x", []byte("<a><b></a>")); err == nil {
		t.Error("mismatched tags accepted")
	}
	if _, err := Parse("x", []byte("<a/><b/>")); err == nil {
		t.Error("multiple roots accepted")
	}
}

func TestNodeByPre(t *testing.T) {
	d := mustParse(t, "manet.xml", manetXML)
	for _, n := range d.Nodes() {
		if got := d.NodeByPre(n.ID.Pre); got != n {
			t.Errorf("NodeByPre(%d) mismatched", n.ID.Pre)
		}
	}
	if d.NodeByPre(0) != nil || d.NodeByPre(int32(d.NodeCount()+1)) != nil {
		t.Error("out-of-range pre must return nil")
	}
}

func TestWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"The Lion Hunt", []string{"The", "Lion", "Hunt"}},
		{"1863-1", []string{"1863-1"}},
		{"", nil},
		{"  a,b;c  ", []string{"a", "b", "c"}},
		{"year=1854!", []string{"year", "1854"}},
	}
	for _, c := range cases {
		if got := Words(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Words(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	if !ContainsWord("The Lion Hunt", "Lion") {
		t.Error("ContainsWord failed on exact word")
	}
	if ContainsWord("The Lion Hunt", "Lio") {
		t.Error("ContainsWord matched a prefix")
	}
	if ContainsWord("The Lion Hunt", "lion") {
		t.Error("ContainsWord must be case-sensitive")
	}
}

// Structural invariants that must hold for every parsed document:
// pre/post/depth are consistent, and the ancestor test agrees with the tree.
func checkInvariants(t *testing.T, d *Document) {
	t.Helper()
	seenPre := make(map[int32]bool)
	seenPost := make(map[int32]bool)
	for _, n := range d.Nodes() {
		if seenPre[n.ID.Pre] || seenPost[n.ID.Post] {
			t.Fatalf("duplicate pre/post in %s: %v", d.URI, n.ID)
		}
		seenPre[n.ID.Pre] = true
		seenPost[n.ID.Post] = true
		if n.Parent != nil {
			if !n.Parent.ID.IsParentOf(n.ID) {
				t.Fatalf("parent test fails for %v under %v", n.ID, n.Parent.ID)
			}
		} else if n.ID.Depth != 1 {
			t.Fatalf("root depth = %d", n.ID.Depth)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				t.Fatal("child parent pointer broken")
			}
		}
	}
	// Ancestor test agrees with actual tree ancestry for all pairs.
	for _, a := range d.Nodes() {
		for _, b := range d.Nodes() {
			want := false
			for cur := b.Parent; cur != nil; cur = cur.Parent {
				if cur == a {
					want = true
					break
				}
			}
			if got := a.ID.IsAncestorOf(b.ID); got != want {
				t.Fatalf("IsAncestorOf(%v, %v) = %v, want %v", a.ID, b.ID, got, want)
			}
		}
	}
}

func TestInvariantsOnSamples(t *testing.T) {
	for _, src := range []string{delacroixXML, manetXML,
		`<a><b><c/><d>x</d></b><b y="1">t<e/>u</b></a>`} {
		checkInvariants(t, mustParse(t, "s.xml", src))
	}
}

// Property test: random small trees keep the invariants.
func TestInvariantsProperty(t *testing.T) {
	labels := []string{"a", "b", "c"}
	var build func(seed *uint64, depth int) string
	next := func(seed *uint64) uint64 {
		*seed = *seed*6364136223846793005 + 1442695040888963407
		return *seed >> 33
	}
	build = func(seed *uint64, depth int) string {
		l := labels[next(seed)%3]
		var b strings.Builder
		b.WriteString("<" + l)
		if next(seed)%4 == 0 {
			b.WriteString(` k="v` + labels[next(seed)%3] + `"`)
		}
		b.WriteString(">")
		kids := int(next(seed) % 4)
		if depth > 3 {
			kids = 0
		}
		for i := 0; i < kids; i++ {
			if next(seed)%3 == 0 {
				b.WriteString("text" + labels[next(seed)%3])
			} else {
				b.WriteString(build(seed, depth+1))
			}
		}
		b.WriteString("</" + l + ">")
		return b.String()
	}
	f := func(s uint64) bool {
		src := build(&s, 0)
		d, err := Parse("prop.xml", []byte(src))
		if err != nil {
			return false
		}
		sub := &testing.T{}
		checkInvariants(sub, d)
		return !sub.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
