package xquery

import (
	"fmt"

	"repro/internal/pattern"
)

// translate lowers the parsed FLWR clauses onto tree patterns with value
// joins. Every use of a variable path (in a condition or the return
// clause) grows a fresh branch under the variable's node, which matches
// XQuery semantics: each path expression iterates independently.
func translate(binds []binding, conds []cond, rets []retItem) (*pattern.Query, error) {
	q := &pattern.Query{}
	vars := map[string]*pattern.Node{}
	patternOf := map[string]int{}

	for _, b := range binds {
		if _, dup := vars[b.varName]; dup {
			return nil, fmt.Errorf("variable $%s bound twice", b.varName)
		}
		for _, s := range b.steps {
			if s.isText {
				return nil, fmt.Errorf("$%s: cannot bind a variable to text()", b.varName)
			}
		}
		if b.relTo == "" {
			root, leaf, err := chain(b.steps)
			if err != nil {
				return nil, err
			}
			q.Patterns = append(q.Patterns, &pattern.Tree{Root: root})
			vars[b.varName] = leaf
			patternOf[b.varName] = len(q.Patterns) - 1
			continue
		}
		base, ok := vars[b.relTo]
		if !ok {
			return nil, fmt.Errorf("$%s bound relative to undefined $%s", b.varName, b.relTo)
		}
		if base.IsAttr {
			return nil, fmt.Errorf("$%s: cannot navigate below attribute variable $%s", b.varName, b.relTo)
		}
		leaf, err := extend(base, b.steps)
		if err != nil {
			return nil, err
		}
		vars[b.varName] = leaf
		patternOf[b.varName] = patternOf[b.relTo]
	}

	// Range bounds accumulate per node before becoming one predicate.
	type bounds struct {
		lo, hi             string
		loStrict, hiStrict bool
		hasLo, hasHi       bool
	}
	ranges := map[*pattern.Node]*bounds{}
	joinSeq := 0

	resolve := func(o operand) (*pattern.Node, error) {
		base, ok := vars[o.varName]
		if !ok {
			return nil, fmt.Errorf("undefined variable $%s", o.varName)
		}
		steps := o.steps
		if n := len(steps); n > 0 && steps[n-1].isText {
			steps = steps[:n-1] // predicates read the string value anyway
		}
		if len(steps) == 0 {
			return base, nil
		}
		if base.IsAttr {
			return nil, fmt.Errorf("cannot navigate below attribute variable $%s", o.varName)
		}
		return extend(base, steps)
	}
	setPred := func(n *pattern.Node, p pattern.Pred) error {
		if n.Pred.Kind != pattern.NoPred {
			return fmt.Errorf("conflicting predicates on one path; bind an extra variable instead")
		}
		n.Pred = p
		return nil
	}

	for _, c := range conds {
		switch {
		case c.op == "contains":
			if !c.l.isVar || c.r.isVar {
				return nil, fmt.Errorf("contains() needs a variable path and a literal")
			}
			n, err := resolve(c.l)
			if err != nil {
				return nil, err
			}
			if err := setPred(n, pattern.Pred{Kind: pattern.Contains, Const: c.r.lit}); err != nil {
				return nil, err
			}
		case c.l.isVar && c.r.isVar:
			if c.op != "=" {
				return nil, fmt.Errorf("only equality joins are in the fragment (got %q)", c.op)
			}
			ln, err := resolve(c.l)
			if err != nil {
				return nil, err
			}
			rn, err := resolve(c.r)
			if err != nil {
				return nil, err
			}
			for _, n := range []*pattern.Node{ln, rn} {
				if n.Var == "" {
					n.Var = fmt.Sprintf("xq%d", joinSeq)
					joinSeq++
				}
			}
			q.Joins = append(q.Joins, pattern.JoinCond{A: ln.Var, B: rn.Var})
		case c.l.isVar || c.r.isVar:
			v, lit, op := c.l, c.r.lit, c.op
			if c.r.isVar {
				v, lit = c.r, c.l.lit
				op = flip(op)
			}
			n, err := resolve(v)
			if err != nil {
				return nil, err
			}
			if op == "=" {
				if err := setPred(n, pattern.Pred{Kind: pattern.Eq, Const: lit}); err != nil {
					return nil, err
				}
				continue
			}
			b := ranges[n]
			if b == nil {
				b = &bounds{}
				ranges[n] = b
			}
			switch op {
			case "<":
				b.hi, b.hiStrict, b.hasHi = lit, true, true
			case "<=":
				b.hi, b.hiStrict, b.hasHi = lit, false, true
			case ">":
				b.lo, b.loStrict, b.hasLo = lit, true, true
			case ">=":
				b.lo, b.loStrict, b.hasLo = lit, false, true
			}
		default:
			return nil, fmt.Errorf("condition between two literals")
		}
	}
	for n, b := range ranges {
		if err := setPred(n, pattern.Pred{
			Kind: pattern.Range,
			Lo:   b.lo, Hi: b.hi,
			LoStrict: b.loStrict, HiStrict: b.hiStrict,
		}); err != nil {
			return nil, err
		}
	}

	for _, r := range rets {
		n, err := resolve(operand{isVar: true, varName: r.varName, steps: r.steps})
		if err != nil {
			return nil, err
		}
		if r.val || n.IsAttr {
			n.Val = true
		} else {
			n.Cont = true
		}
	}
	if len(rets) == 0 {
		return nil, fmt.Errorf("empty return clause")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func flip(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// chain builds a fresh node chain from steps and returns (root, leaf).
func chain(steps []step) (*pattern.Node, *pattern.Node, error) {
	var root, cur *pattern.Node
	for _, s := range steps {
		if s.isText {
			return nil, nil, fmt.Errorf("text() is only allowed at the end of a return path")
		}
		n := &pattern.Node{Label: s.label, IsAttr: s.isAttr, Axis: s.axis}
		if cur == nil {
			root = n
		} else {
			n.Parent = cur
			cur.Children = append(cur.Children, n)
		}
		cur = n
	}
	return root, cur, nil
}

// extend grows a fresh branch of steps under base and returns the leaf.
func extend(base *pattern.Node, steps []step) (*pattern.Node, error) {
	root, leaf, err := chain(steps)
	if err != nil {
		return nil, err
	}
	root.Parent = base
	base.Children = append(base.Children, root)
	return leaf, nil
}
