// Package xquery translates the paper's XQuery fragment into tree-pattern
// queries. Section 4 states that queries "are formulated in an expressive
// fragment of XQuery, amounting to value joins over tree patterns" and
// that the translation to the pattern notation is straightforward (it is
// omitted in the paper and given in [21]); this package implements it.
//
// Supported fragment (FLWR without let/order by):
//
//	query   := 'for' binding (',' binding)*
//	           ('where' cond ('and' cond)*)?
//	           'return' ret
//	binding := '$'NAME 'in' source
//	source  := path            -- absolute: anchors a new tree pattern
//	         | '$'NAME path    -- relative: extends the other variable's tree
//	path    := ('/' | '//') test path?
//	test    := NCName | '@'NCName
//	cond    := operand cmp operand
//	         | 'contains(' operand ',' literal ')'
//	operand := '$'NAME path? | literal
//	cmp     := '=' | '!=' is not supported | '<' | '<=' | '>' | '>='
//	ret     := retitem (',' retitem)*   -- optionally parenthesized
//	retitem := '$'NAME path?                    -- cont: the XML subtree
//	         | 'string(' '$'NAME path? ')'      -- val: the string value
//	         | '$'NAME path '/text()'           -- val
//	         | '$'NAME '/@'NCName               -- val of the attribute
//
// Translation rules, mirroring Section 4's annotations:
//
//   - each absolute binding roots one tree pattern; relative bindings and
//     every path used in conditions or the return clause add branches;
//   - comparing a variable path with a literal attaches an equality
//     predicate; contains() attaches a containment predicate; </<=/>/>=
//     against literals combine into the range predicate a ≤ val ≤ b;
//   - comparing two variable paths creates a value join (the dashed lines
//     of Figure 2), whether or not the variables live in the same pattern;
//   - return items yield cont or val annotations per the forms above.
package xquery

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// Parse translates an XQuery string into a pattern query.
func Parse(src string) (*pattern.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("xquery: %w", err)
	}
	p := &parser{toks: toks}
	q, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("xquery: parsing %q: %w", src, err)
	}
	return q, nil
}

// MustParse is Parse for statically known queries.
func MustParse(src string) *pattern.Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

// --- lexer ---------------------------------------------------------------

type tkind uint8

const (
	tEOF tkind = iota
	tName
	tVar    // $name
	tString // "..." or '...'
	tSlash
	tDSlash
	tAt
	tComma
	tLParen
	tRParen
	tCmp // = != < <= > >=
)

type tok struct {
	kind tkind
	text string
	pos  int
}

func lex(src string) ([]tok, error) {
	var out []tok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/':
			if i+1 < len(src) && src[i+1] == '/' {
				out = append(out, tok{tDSlash, "//", i})
				i += 2
			} else {
				out = append(out, tok{tSlash, "/", i})
				i++
			}
		case c == '@':
			out = append(out, tok{tAt, "@", i})
			i++
		case c == ',':
			out = append(out, tok{tComma, ",", i})
			i++
		case c == '(':
			out = append(out, tok{tLParen, "(", i})
			i++
		case c == ')':
			out = append(out, tok{tRParen, ")", i})
			i++
		case c == '=':
			out = append(out, tok{tCmp, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				out = append(out, tok{tCmp, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("unexpected '!' at %d", i)
			}
		case c == '<' || c == '>':
			op := string(c)
			i++
			if i < len(src) && src[i] == '=' {
				op += "="
				i++
			}
			out = append(out, tok{tCmp, op, i})
		case c == '$':
			j := i + 1
			for j < len(src) && isNameByte(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("empty variable name at %d", i)
			}
			out = append(out, tok{tVar, src[i+1 : j], i})
			i = j
		case c == '"' || c == '\'':
			quote := c
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("unterminated string at %d", i)
			}
			out = append(out, tok{tString, b.String(), i})
			i = j + 1
		case isNameByte(c):
			j := i
			for j < len(src) && isNameByte(src[j]) {
				j++
			}
			out = append(out, tok{tName, src[i:j], i})
			i = j
		default:
			return nil, fmt.Errorf("unexpected character %q at %d", c, i)
		}
	}
	out = append(out, tok{kind: tEOF, pos: len(src)})
	return out, nil
}

func isNameByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-' || c == '.'
}

// --- parser --------------------------------------------------------------

type step struct {
	axis   pattern.Axis
	label  string
	isAttr bool
	isText bool // trailing text()
}

type operand struct {
	isVar   bool
	varName string
	steps   []step
	lit     string
}

type cond struct {
	op   string
	l, r operand
}

type retItem struct {
	varName string
	steps   []step
	val     bool // string(...) / text() / attribute => val, else cont
}

type binding struct {
	varName string
	relTo   string // "" for absolute bindings
	steps   []step
}

type parser struct {
	toks []tok
	i    int
}

func (p *parser) peek() tok { return p.toks[p.i] }
func (p *parser) next() tok { t := p.toks[p.i]; p.i++; return t }

func (p *parser) expectName(word string) error {
	t := p.next()
	if t.kind != tName || t.text != word {
		return fmt.Errorf("expected %q, got %q at %d", word, t.text, t.pos)
	}
	return nil
}

func (p *parser) parse() (*pattern.Query, error) {
	if err := p.expectName("for"); err != nil {
		return nil, err
	}
	var binds []binding
	for {
		b, err := p.parseBinding()
		if err != nil {
			return nil, err
		}
		binds = append(binds, b)
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		break
	}
	var conds []cond
	if t := p.peek(); t.kind == tName && t.text == "where" {
		p.next()
		for {
			c, err := p.parseCond()
			if err != nil {
				return nil, err
			}
			conds = append(conds, c)
			if t := p.peek(); t.kind == tName && t.text == "and" {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectName("return"); err != nil {
		return nil, err
	}
	rets, err := p.parseReturn()
	if err != nil {
		return nil, err
	}
	if t := p.next(); t.kind != tEOF {
		return nil, fmt.Errorf("trailing input %q at %d", t.text, t.pos)
	}
	return translate(binds, conds, rets)
}

func (p *parser) parseBinding() (binding, error) {
	v := p.next()
	if v.kind != tVar {
		return binding{}, fmt.Errorf("expected variable, got %q at %d", v.text, v.pos)
	}
	if err := p.expectName("in"); err != nil {
		return binding{}, err
	}
	b := binding{varName: v.text}
	if p.peek().kind == tVar {
		b.relTo = p.next().text
	}
	steps, err := p.parsePath(b.relTo == "")
	if err != nil {
		return binding{}, err
	}
	if len(steps) == 0 {
		return binding{}, fmt.Errorf("binding of $%s has an empty path", v.text)
	}
	b.steps = steps
	return b, nil
}

// parsePath parses ('/'|'//') test ... sequences. required demands at least
// one step.
func (p *parser) parsePath(required bool) ([]step, error) {
	var steps []step
	for {
		t := p.peek()
		var axis pattern.Axis
		switch t.kind {
		case tSlash:
			axis = pattern.Child
		case tDSlash:
			axis = pattern.Descendant
		default:
			if required && len(steps) == 0 {
				return nil, fmt.Errorf("expected path at %d", t.pos)
			}
			return steps, nil
		}
		p.next()
		nt := p.next()
		s := step{axis: axis}
		switch nt.kind {
		case tAt:
			name := p.next()
			if name.kind != tName {
				return nil, fmt.Errorf("expected attribute name at %d", name.pos)
			}
			s.isAttr = true
			s.label = name.text
		case tName:
			if nt.text == "text" && p.peek().kind == tLParen {
				p.next()
				if c := p.next(); c.kind != tRParen {
					return nil, fmt.Errorf("expected ')' after text( at %d", c.pos)
				}
				s.isText = true
			} else {
				s.label = nt.text
			}
		default:
			return nil, fmt.Errorf("expected name step, got %q at %d", nt.text, nt.pos)
		}
		steps = append(steps, s)
		if s.isAttr || s.isText {
			return steps, nil
		}
	}
}

func (p *parser) parseCond() (cond, error) {
	if t := p.peek(); t.kind == tName && t.text == "contains" {
		p.next()
		if c := p.next(); c.kind != tLParen {
			return cond{}, fmt.Errorf("expected '(' at %d", c.pos)
		}
		l, err := p.parseOperand()
		if err != nil {
			return cond{}, err
		}
		if c := p.next(); c.kind != tComma {
			return cond{}, fmt.Errorf("expected ',' in contains at %d", c.pos)
		}
		r, err := p.parseOperand()
		if err != nil {
			return cond{}, err
		}
		if c := p.next(); c.kind != tRParen {
			return cond{}, fmt.Errorf("expected ')' at %d", c.pos)
		}
		return cond{op: "contains", l: l, r: r}, nil
	}
	l, err := p.parseOperand()
	if err != nil {
		return cond{}, err
	}
	op := p.next()
	if op.kind != tCmp {
		return cond{}, fmt.Errorf("expected comparison, got %q at %d", op.text, op.pos)
	}
	if op.text == "!=" {
		return cond{}, fmt.Errorf("'!=' is outside the supported fragment (offset %d)", op.pos)
	}
	r, err := p.parseOperand()
	if err != nil {
		return cond{}, err
	}
	return cond{op: op.text, l: l, r: r}, nil
}

func (p *parser) parseOperand() (operand, error) {
	t := p.peek()
	switch t.kind {
	case tVar:
		p.next()
		steps, err := p.parsePath(false)
		if err != nil {
			return operand{}, err
		}
		return operand{isVar: true, varName: t.text, steps: steps}, nil
	case tString, tName:
		p.next()
		return operand{lit: t.text}, nil
	default:
		return operand{}, fmt.Errorf("expected operand, got %q at %d", t.text, t.pos)
	}
}

func (p *parser) parseReturn() ([]retItem, error) {
	paren := false
	if p.peek().kind == tLParen {
		paren = true
		p.next()
	}
	var items []retItem
	for {
		it, err := p.parseRetItem()
		if err != nil {
			return nil, err
		}
		items = append(items, it)
		if p.peek().kind == tComma {
			p.next()
			continue
		}
		break
	}
	if paren {
		if c := p.next(); c.kind != tRParen {
			return nil, fmt.Errorf("expected ')' closing return at %d", c.pos)
		}
	}
	return items, nil
}

func (p *parser) parseRetItem() (retItem, error) {
	t := p.peek()
	if t.kind == tName && t.text == "string" {
		p.next()
		if c := p.next(); c.kind != tLParen {
			return retItem{}, fmt.Errorf("expected '(' at %d", c.pos)
		}
		v := p.next()
		if v.kind != tVar {
			return retItem{}, fmt.Errorf("expected variable in string() at %d", v.pos)
		}
		steps, err := p.parsePath(false)
		if err != nil {
			return retItem{}, err
		}
		if c := p.next(); c.kind != tRParen {
			return retItem{}, fmt.Errorf("expected ')' at %d", c.pos)
		}
		return retItem{varName: v.text, steps: steps, val: true}, nil
	}
	if t.kind != tVar {
		return retItem{}, fmt.Errorf("expected return item, got %q at %d", t.text, t.pos)
	}
	p.next()
	steps, err := p.parsePath(false)
	if err != nil {
		return retItem{}, err
	}
	it := retItem{varName: t.text, steps: steps}
	// $x/.../text() and $x/@a return string values; bare paths return the
	// XML subtree (cont), the natural granularity of XPath results.
	if n := len(steps); n > 0 && (steps[n-1].isText || steps[n-1].isAttr) {
		it.val = true
		if steps[n-1].isText {
			it.steps = steps[:n-1]
		}
	}
	return it, nil
}
