package xquery

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/pattern"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

func paintings(t *testing.T) []*xmltree.Document {
	t.Helper()
	var docs []*xmltree.Document
	for _, gd := range xmark.Paintings() {
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	return docs
}

func eval(t *testing.T, src string, docs []*xmltree.Document) *engine.Result {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	res, err := engine.EvalQueryOnDocs(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Figure 2's q1 in XQuery: (painting name, painter name) pairs.
func TestQ1Translation(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting
		return (string($p/name), string($p//painter/name))`, docs)
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	found := false
	for _, r := range res.Rows {
		if r.Cols[0] == "Olympia" && r.Cols[1] == "EdouardManet" {
			found = true
		}
	}
	if !found {
		t.Error("missing the Olympia row")
	}
}

// q2: the cont granularity — bare paths return the XML subtree.
func TestQ2ContentGranularity(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting where $p/year = "1854" return $p/description`, docs)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if !strings.HasPrefix(res.Rows[0].Cols[0], "<description>") {
		t.Errorf("expected subtree serialization, got %q", res.Rows[0].Cols[0])
	}
}

// q3: contains().
func TestQ3Contains(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting
		where contains($p/name, "Lion")
		return string($p/painter/name/last)`, docs)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, r := range res.Rows {
		if r.Cols[0] != "Delacroix" {
			t.Errorf("row = %v", r)
		}
	}
}

// q4: a range built from two one-sided comparisons.
func TestQ4Range(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting
		where $p/painter/name/last = "Manet" and $p/year > "1854" and $p/year <= "1865"
		return string($p/name)`, docs)
	var names []string
	for _, r := range res.Rows {
		names = append(names, r.Cols[0])
	}
	sort.Strings(names)
	want := "Le dejeuner sur lherbe;Music in the Tuileries;The Races at Longchamp"
	if strings.Join(names, ";") != want {
		t.Errorf("names = %v", names)
	}
}

// q5: the value join across documents.
func TestQ5ValueJoin(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $m in //museum, $p in //painting
		where $m//painting/@id = $p/@id and $p/painter/name/last = "Delacroix"
		return string($m/name)`, docs)
	museums := map[string]bool{}
	for _, r := range res.Rows {
		museums[r.Cols[0]] = true
	}
	for _, m := range []string{"Louvre", "National Gallery", "Art Institute"} {
		if !museums[m] {
			t.Errorf("missing %q in %v", m, museums)
		}
	}
	if museums["Musee dOrsay"] {
		t.Error("Musee dOrsay returned despite holding no Delacroix")
	}
}

func TestRelativeBinding(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting, $n in $p/painter/name
		where $n/last = "Monet"
		return string($n/first)`, docs)
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "Claude" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestAttributeReturn(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting where contains($p/name, "Olympia") return $p/@id`, docs)
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "1863-1" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestTextStep(t *testing.T) {
	docs := paintings(t)
	res := eval(t, `for $p in //painting where $p/year = "1854" return $p/name/text()`, docs)
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "Christians Fleeing" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestFlippedComparison(t *testing.T) {
	docs := paintings(t)
	// literal on the left: "1854" < $p/year.
	res := eval(t, `for $p in //painting
		where "1860" < $p/year and $p/painter/name/last = "Delacroix"
		return string($p/name)`, docs)
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "The Lion Hunt Fragment" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestTranslationStructure(t *testing.T) {
	q := MustParse(`for $m in //museum, $p in //painting
		where $m//painting/@id = $p/@id
		return (string($m/name), $p/name)`)
	if len(q.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(q.Patterns))
	}
	if len(q.Joins) != 1 {
		t.Fatalf("joins = %d", len(q.Joins))
	}
	// Rendering through the pattern syntax must reparse.
	if _, err := pattern.Parse(q.String()); err != nil {
		t.Errorf("translated query does not render/reparse: %v\n%s", err, q.String())
	}
	// Annotations: one val (museum name), one cont (painting name).
	var vals, conts int
	for _, tr := range q.Patterns {
		tr.Walk(func(n *pattern.Node) {
			if n.Val {
				vals++
			}
			if n.Cont {
				conts++
			}
		})
	}
	if vals < 1 || conts != 1 {
		t.Errorf("vals=%d conts=%d", vals, conts)
	}
}

func TestSamePatternJoin(t *testing.T) {
	// Both join endpoints inside one pattern: enforced as a filter.
	doc, _ := xmltree.Parse("d.xml", []byte(`<a><b>7</b><c>7</c><name>yes</name></a><!---->`))
	res := eval(t, `for $x in //a where $x/b = $x/c return string($x/name)`,
		[]*xmltree.Document{doc})
	if len(res.Rows) != 1 || res.Rows[0].Cols[0] != "yes" {
		t.Errorf("rows = %v", res.Rows)
	}
	doc2, _ := xmltree.Parse("d2.xml", []byte(`<a><b>7</b><c>8</c><name>no</name></a>`))
	res = eval(t, `for $x in //a where $x/b = $x/c return string($x/name)`,
		[]*xmltree.Document{doc2})
	if len(res.Rows) != 0 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`for $x in //a`,        // no return
		`for $x in //a return`, // empty return
		`for $x in //a where $x != "1" return $x`,             // != unsupported
		`for $x in //a where $x < $y return $x`,               // non-equality join
		`for $x in //a where "a" = "b" return $x`,             // literal = literal
		`for $x in //a return $y`,                             // undefined variable
		`for $x in //a, $x in //b return $x`,                  // duplicate variable
		`for $x in $y/a return $x`,                            // relative to undefined
		`for $x in //a/@id, $z in $x/b return $z`,             // navigate below attribute
		`for $x in //a where $x = "1" and $x = "2" return $x`, // conflicting preds
		`for $x in //a return $x extra`,                       // trailing input
		`for $x in //a where contains($x, $x) return $x`,      // contains needs literal
		`for $x in text() return $x`,                          // binding to text()
		`for $x in //a return string($x`,                      // unbalanced
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// Differential test: XQuery formulations of workload-like queries must
// return exactly the rows of their hand-written pattern counterparts.
func TestAgreesWithPatternQueries(t *testing.T) {
	cfg := xmark.DefaultConfig(100)
	cfg.TargetDocBytes = 4 << 10
	var docs []*xmltree.Document
	for i := 0; i < cfg.Docs; i++ {
		gd := xmark.GenerateDoc(cfg, i)
		d, err := xmltree.Parse(gd.URI, gd.Data)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, d)
	}
	cases := []struct{ xq, pat string }{
		{
			`for $i in //item where $i/location = "Zanzibar" return string($i/location)`,
			`//item[/location{val}="Zanzibar"]`,
		},
		{
			`for $p in //person where contains($p/profile/education, "Graduate") return string($p/name)`,
			`//person[/name{val}, /profile[/education~"Graduate"]]`,
		},
		{
			`for $a in //closed_auction where $a/price > "1000" and $a/price < "1100" return string($a/price)`,
			`//closed_auction[/price{val} in ("1000","1100")]`,
		},
	}
	for _, c := range cases {
		xq := eval(t, c.xq, docs)
		pat, err := engine.EvalQueryOnDocs(pattern.MustParse(c.pat), docs)
		if err != nil {
			t.Fatal(err)
		}
		key := func(res *engine.Result) string {
			var rows []string
			for _, r := range res.Rows {
				rows = append(rows, r.URI+"|"+strings.Join(r.Cols, "|"))
			}
			sort.Strings(rows)
			return strings.Join(rows, "\n")
		}
		if key(xq) != key(pat) {
			t.Errorf("mismatch for %q:\nxquery:\n%s\npattern:\n%s", c.xq, key(xq), key(pat))
		}
	}
}
